# End-to-end CLI checks for the declarative config path, run under
# ctest. Invoked as:
#
#   cmake -DCOMET_SIM=<path to comet_sim> -DWORK_DIR=<scratch dir>
#         -DEXAMPLES_DIR=<repo>/examples/configs -P config_cli_test.cmake
#
# Covers: --dump-config → --config round-trips to bit-identical JSON
# (modulo the config-provenance fields) for a flat and a hybrid device;
# a custom device defined only in a config file runs end-to-end with no
# registry edit; the committed example specs stay valid; missing files
# and schema errors exit 2 with file:line diagnostics; --config rejects
# matrix flags.

if(NOT DEFINED COMET_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED EXAMPLES_DIR)
  message(FATAL_ERROR "pass -DCOMET_SIM=..., -DWORK_DIR=... and -DEXAMPLES_DIR=...")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_rc label rc expected)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${rc}")
  endif()
endfunction()

function(expect_contains label haystack needle)
  string(FIND "${haystack}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${label}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

# Strips the config-provenance fields so flag-run and config-run JSON
# can be compared bit-for-bit.
function(strip_provenance json out_var)
  string(REGEX REPLACE "\"experiment\": \"[^\"]*\", " "" json "${json}")
  string(REGEX REPLACE "\"config_file\": \"[^\"]*\", " "" json "${json}")
  set(${out_var} "${json}" PARENT_SCOPE)
endfunction()

# --- 1. Acceptance loop per device class: dump the resolved spec, rerun
# ---    it through --config, and require bit-identical JSON modulo
# ---    provenance.
foreach(device comet hybrid-comet)
  set(flags --device ${device} --workload gcc_like --requests 800 --seed 11)
  execute_process(
    COMMAND ${COMET_SIM} ${flags} --json ${WORK_DIR}/${device}_flags.json
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  expect_rc("flag run ${device}" "${rc}" 0)
  execute_process(
    COMMAND ${COMET_SIM} ${flags} --dump-config ${WORK_DIR}/${device}.toml
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  expect_rc("dump-config ${device}" "${rc}" 0)
  expect_contains("dump-config ${device}" "${out}" "wrote")
  execute_process(
    COMMAND ${COMET_SIM} --config ${WORK_DIR}/${device}.toml
            --json ${WORK_DIR}/${device}_config.json
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  expect_rc("config run ${device}" "${rc}" 0)

  file(READ ${WORK_DIR}/${device}_flags.json from_flags)
  file(READ ${WORK_DIR}/${device}_config.json from_config)
  expect_contains("provenance ${device}" "${from_config}" "${device}.toml")
  strip_provenance("${from_flags}" from_flags)
  strip_provenance("${from_config}" from_config)
  if(NOT from_flags STREQUAL from_config)
    message(FATAL_ERROR "config run of ${device} diverged from the flag run:\n"
                        "${from_flags}\n--- vs ---\n${from_config}")
  endif()
endforeach()

# --- 1b. The scheduled analogue: a --schedule run dumps a [controller]
# ---     section and replays from it bit-identically (modulo
# ---     provenance), including the scheduler JSON fields.
set(sched_flags --device comet --workload gcc_like --requests 800 --seed 11
    --schedule frfcfs --read-q 16 --write-q 16)
execute_process(
  COMMAND ${COMET_SIM} ${sched_flags} --json ${WORK_DIR}/sched_flags.json
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("scheduled flag run" "${rc}" 0)
execute_process(
  COMMAND ${COMET_SIM} ${sched_flags} --dump-config ${WORK_DIR}/sched.toml
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("scheduled dump-config" "${rc}" 0)
file(READ ${WORK_DIR}/sched.toml sched_toml)
expect_contains("scheduled dump-config" "${sched_toml}" "[controller]")
expect_contains("scheduled dump-config" "${sched_toml}" "policy = \"frfcfs\"")
expect_contains("scheduled dump-config" "${sched_toml}" "read_queue_depth = 16")
execute_process(
  COMMAND ${COMET_SIM} --config ${WORK_DIR}/sched.toml
          --json ${WORK_DIR}/sched_config.json
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("scheduled config run" "${rc}" 0)
file(READ ${WORK_DIR}/sched_flags.json sched_from_flags)
file(READ ${WORK_DIR}/sched_config.json sched_from_config)
expect_contains("scheduled json" "${sched_from_flags}" "\"sched\": {")
expect_contains("scheduled json" "${sched_from_flags}" "\"policy\": \"frfcfs\"")
strip_provenance("${sched_from_flags}" sched_from_flags)
strip_provenance("${sched_from_config}" sched_from_config)
if(NOT sched_from_flags STREQUAL sched_from_config)
  message(FATAL_ERROR "scheduled config run diverged from the flag run:\n"
                      "${sched_from_flags}\n--- vs ---\n${sched_from_config}")
endif()

# --- 2. A custom device defined only in a file runs with no registry
# ---    edit (the committed example specs double as the fixtures).
foreach(example comet_16ch hybrid_custom)
  execute_process(
    COMMAND ${COMET_SIM} --device-file ${EXAMPLES_DIR}/${example}.toml
            --workload gcc_like --requests 500
            --json ${WORK_DIR}/${example}.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  expect_rc("device-file ${example}" "${rc}" 0)
  file(READ ${WORK_DIR}/${example}.json json)
  expect_contains("device-file ${example}" "${json}" "\"requests\": 500")
endforeach()
execute_process(
  COMMAND ${COMET_SIM} --device-file ${EXAMPLES_DIR}/comet_16ch.toml
          --workload gcc_like --requests 200
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("custom device table" "${rc}" 0)
expect_contains("custom device table" "${out}" "comet-16ch")

# --- 3. The committed sweep experiments parse and expand.
execute_process(
  COMMAND ${COMET_SIM} --config ${EXAMPLES_DIR}/full_sweep.toml
          --dump-config ${WORK_DIR}/full_sweep_resolved.toml
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("example sweep resolves" "${rc}" 0)
expect_contains("example sweep resolves" "${out}" "3 device(s)")
expect_contains("example sweep resolves" "${out}" "3 workload(s)")
execute_process(
  COMMAND ${COMET_SIM} --config ${EXAMPLES_DIR}/scheduled_sweep.toml
          --dump-config ${WORK_DIR}/scheduled_sweep_resolved.toml
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("scheduled example resolves" "${rc}" 0)
expect_contains("scheduled example resolves" "${out}" "3 device(s)")
file(READ ${WORK_DIR}/scheduled_sweep_resolved.toml sched_sweep_toml)
expect_contains("scheduled example resolves" "${sched_sweep_toml}"
                "policy = [\"fcfs\", \"frfcfs\", \"read-first\"]")

# --- 4. Missing config file: exit 2 before any simulation runs.
execute_process(
  COMMAND ${COMET_SIM} --config ${WORK_DIR}/nope.toml
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("missing config" "${rc}" 2)
expect_contains("missing config" "${err}" "nope.toml")

# --- 5. Schema errors exit 2 naming file, line and key.
file(WRITE ${WORK_DIR}/typo.toml
     "[experiment]\ndevices = [\"comet\"]\nworkloads = [\"gcc_like\"]\nrequets = 5\n")
execute_process(
  COMMAND ${COMET_SIM} --config ${WORK_DIR}/typo.toml
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("unknown key" "${rc}" 2)
expect_contains("unknown key" "${err}" "typo.toml:4")
expect_contains("unknown key" "${err}" "requets")

file(WRITE ${WORK_DIR}/badtype.toml
     "[device]\nbase = \"comet\"\n[device.timing]\nchannels = \"many\"\n")
execute_process(
  COMMAND ${COMET_SIM} --device-file ${WORK_DIR}/badtype.toml
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("bad type" "${rc}" 2)
expect_contains("bad type" "${err}" "badtype.toml:4")
expect_contains("bad type" "${err}" "expects integer")

# --- 6. --config owns the matrix: combining with matrix flags exits 2.
execute_process(
  COMMAND ${COMET_SIM} --config ${WORK_DIR}/comet.toml --device comet
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("config conflicts" "${rc}" 2)
expect_contains("config conflicts" "${err}" "--config cannot be combined")
execute_process(
  COMMAND ${COMET_SIM} --config ${WORK_DIR}/comet.toml --schedule frfcfs
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("config/schedule conflict" "${rc}" 2)
expect_contains("config/schedule conflict" "${err}"
                "--config cannot be combined")

message(STATUS "config CLI tests passed")
