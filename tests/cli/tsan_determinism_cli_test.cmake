# Sharded-vs-serial bit-identity through the real binary, run under
# ctest in every build flavor — including COMET_SANITIZE=thread, where
# it is the TSan regression gate the tsan CI lane relies on: a memory-
# ordering "fix" that silences the sanitizer by perturbing the merge
# order breaks this test instead of shipping. Invoked as:
#
#   cmake -DCOMET_SIM=<path> -DWORK_DIR=<scratch> -DJQ=<jq>
#         -P tsan_determinism_cli_test.cmake
#
# One traced, scheduled run is replayed at --run-threads 1 and
# --run-threads 8 on a flat and a hybrid device; the stats JSON must
# match bit-for-bit modulo the run_threads provenance field, and the
# telemetry trace JSON must match byte-for-byte. A profiled leg then
# replays the same trace with the full host-observability stack on
# (--profile, --progress, --assert-slo) and must reproduce the
# unprofiled serial stats exactly. A final loop repeats the exercise
# for a traced multi-tenant run under the fairness-aware FR-FCFS
# variant — the per-tenant breakdowns, slowdowns, Jain index and the
# per-tenant telemetry tracks must all shard bit-identically.

if(NOT DEFINED COMET_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED JQ)
  message(FATAL_ERROR "pass -DCOMET_SIM=..., -DWORK_DIR=... and -DJQ=...")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_rc label rc expected)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${rc}")
  endif()
endfunction()

execute_process(
  COMMAND ${COMET_SIM} --dump-trace ${WORK_DIR}/det.nvt
          --workload gcc_like --requests 6000
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("dump trace" "${rc}" 0)

foreach(device comet hybrid-comet)
  foreach(threads 1 8)
    execute_process(
      COMMAND ${COMET_SIM} --device ${device}
              --trace-file ${WORK_DIR}/det.nvt
              --schedule frfcfs --read-q 16 --write-q 16
              --run-threads ${threads}
              --trace-out ${WORK_DIR}/${device}_t${threads}_trace.json
              --metrics-interval 1000
              --json ${WORK_DIR}/${device}_t${threads}.json
      RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
    expect_rc("${device} run-threads ${threads}" "${rc}" 0)
    execute_process(
      COMMAND ${JQ} -S
              "del(.results[].run_threads, .results[].trace_out)"
              ${WORK_DIR}/${device}_t${threads}.json
      RESULT_VARIABLE rc
      OUTPUT_FILE ${WORK_DIR}/${device}_t${threads}_norm.json
      ERROR_VARIABLE err)
    expect_rc("${device} t${threads} jq normalize" "${rc}" 0)
  endforeach()

  file(READ ${WORK_DIR}/${device}_t1_norm.json serial_stats)
  file(READ ${WORK_DIR}/${device}_t8_norm.json sharded_stats)
  if(NOT serial_stats STREQUAL sharded_stats)
    message(FATAL_ERROR "${device}: sharded (8-thread) stats differ from "
            "serial — determinism regression (diff "
            "${WORK_DIR}/${device}_t1_norm.json against _t8_norm.json)")
  endif()

  file(READ ${WORK_DIR}/${device}_t1_trace.json serial_trace)
  file(READ ${WORK_DIR}/${device}_t8_trace.json sharded_trace)
  if(NOT serial_trace STREQUAL sharded_trace)
    message(FATAL_ERROR "${device}: sharded telemetry trace is not "
            "byte-identical to serial — lane recording regression")
  endif()
endforeach()

# --- Host-profiling determinism (PR 10): the same trace with the full
# --- observability stack on (--profile, heartbeat, an always-true SLO
# --- gate) must reproduce the unprofiled serial stats bit-for-bit at
# --- 1 and 8 replay threads — profiling reads clocks and counters but
# --- never perturbs the replay. Under COMET_SANITIZE=thread this also
# --- races the heartbeat thread against the LanePool workers.
foreach(threads 1 8)
  execute_process(
    COMMAND ${COMET_SIM} --device comet
            --trace-file ${WORK_DIR}/det.nvt
            --schedule frfcfs --read-q 16 --write-q 16
            --run-threads ${threads}
            --trace-out ${WORK_DIR}/prof_t${threads}_trace.json
            --metrics-interval 1000
            --profile --progress=20 --assert-slo "wall_s<=3600"
            --json ${WORK_DIR}/prof_t${threads}.json
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  expect_rc("profiled run-threads ${threads}" "${rc}" 0)
  execute_process(
    COMMAND ${JQ} -S
            "del(.results[].run_threads, .results[].trace_out, .results[].host, .results[].slo)"
            ${WORK_DIR}/prof_t${threads}.json
    RESULT_VARIABLE rc
    OUTPUT_FILE ${WORK_DIR}/prof_t${threads}_norm.json
    ERROR_VARIABLE err)
  expect_rc("profiled t${threads} jq normalize" "${rc}" 0)
endforeach()

# The profiled records must carry a real host object before deletion
# (guards a regression that silently turns profiling off and passes).
file(READ ${WORK_DIR}/prof_t8.json profiled_report)
if(NOT profiled_report MATCHES "\"host\": {")
  message(FATAL_ERROR "profiled report lost its host profile object")
endif()

execute_process(
  COMMAND ${JQ} -S
          "del(.results[].run_threads, .results[].trace_out, .results[].host, .results[].slo)"
          ${WORK_DIR}/comet_t1.json
  RESULT_VARIABLE rc
  OUTPUT_FILE ${WORK_DIR}/comet_t1_renorm.json
  ERROR_VARIABLE err)
expect_rc("unprofiled baseline jq normalize" "${rc}" 0)

file(READ ${WORK_DIR}/comet_t1_renorm.json unprofiled_stats)
foreach(threads 1 8)
  file(READ ${WORK_DIR}/prof_t${threads}_norm.json profiled_stats)
  if(NOT unprofiled_stats STREQUAL profiled_stats)
    message(FATAL_ERROR "profiled t${threads} stats differ from the "
            "unprofiled serial run — profiling perturbed the replay "
            "(diff ${WORK_DIR}/comet_t1_renorm.json against "
            "prof_t${threads}_norm.json)")
  endif()
  # The telemetry trace recorded alongside profiling must also be
  # byte-identical to the unprofiled serial trace.
  file(READ ${WORK_DIR}/comet_t1_trace.json unprofiled_trace)
  file(READ ${WORK_DIR}/prof_t${threads}_trace.json profiled_trace)
  if(NOT unprofiled_trace STREQUAL profiled_trace)
    message(FATAL_ERROR "profiled t${threads} telemetry trace is not "
            "byte-identical to the unprofiled serial trace")
  endif()
endforeach()

# --- Multi-tenant determinism: two tenants under frfcfs-cap (the
# --- starvation bookkeeping is the newest channel-local state, so it
# --- gets the sharded gate too), traced, serial vs 8 threads.
foreach(threads 1 8)
  execute_process(
    COMMAND ${COMET_SIM} --device comet
            --tenants "web=gcc_like,batch=mcf_like:40:0.5"
            --requests 4000
            --schedule frfcfs-cap --read-q 16 --write-q 16
            --run-threads ${threads}
            --trace-out ${WORK_DIR}/tenants_t${threads}_trace.json
            --json ${WORK_DIR}/tenants_t${threads}.json
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  expect_rc("tenants run-threads ${threads}" "${rc}" 0)
  execute_process(
    COMMAND ${JQ} -S
            "del(.results[].run_threads, .results[].trace_out)"
            ${WORK_DIR}/tenants_t${threads}.json
    RESULT_VARIABLE rc
    OUTPUT_FILE ${WORK_DIR}/tenants_t${threads}_norm.json
    ERROR_VARIABLE err)
  expect_rc("tenants t${threads} jq normalize" "${rc}" 0)
endforeach()

file(READ ${WORK_DIR}/tenants_t1_norm.json serial_stats)
file(READ ${WORK_DIR}/tenants_t8_norm.json sharded_stats)
if(NOT serial_stats STREQUAL sharded_stats)
  message(FATAL_ERROR "multi-tenant: sharded (8-thread) stats differ from "
          "serial — per-tenant merge determinism regression (diff "
          "${WORK_DIR}/tenants_t1_norm.json against _t8_norm.json)")
endif()

# The normalized report must actually carry the tenant block (guards
# against a regression that silently drops it and trivially passes).
file(READ ${WORK_DIR}/tenants_t1_norm.json tenant_report)
if(NOT tenant_report MATCHES "fairness_index")
  message(FATAL_ERROR "multi-tenant report lost its fairness breakdown")
endif()

file(READ ${WORK_DIR}/tenants_t1_trace.json serial_trace)
file(READ ${WORK_DIR}/tenants_t8_trace.json sharded_trace)
if(NOT serial_trace STREQUAL sharded_trace)
  message(FATAL_ERROR "multi-tenant: sharded telemetry trace is not "
          "byte-identical to serial — per-tenant track regression")
endif()

message(STATUS "sharded-vs-serial determinism tests passed")
