# End-to-end CLI checks for the on-disk trace replay path, run under
# ctest. Invoked as:
#
#   cmake -DCOMET_SIM=<path to comet_sim> -DWORK_DIR=<scratch dir>
#         -P trace_cli_test.cmake
#
# Covers: missing trace file exits 2 (bad-args class) naming the path;
# parse errors name the 1-based line number and offending text and exit
# 1; --dump-trace then --trace-file round-trips through a flat and a
# hybrid device, emitting valid JSON.

if(NOT DEFINED COMET_SIM OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DCOMET_SIM=... and -DWORK_DIR=...")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_rc label rc expected)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${rc}")
  endif()
endfunction()

function(expect_contains label haystack needle)
  string(FIND "${haystack}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${label}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

# --- 1. Missing trace file: exit 2 before any simulation runs.
execute_process(
  COMMAND ${COMET_SIM} --device comet --trace-file ${WORK_DIR}/nope.trace
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("missing trace file" "${rc}" 2)
expect_contains("missing trace file" "${err}" "nope.trace")

# --- 2. Malformed trace: exit 1 with the line number and offending text.
file(WRITE ${WORK_DIR}/broken.trace "100 R 0x1000\nthis is not a record\n")
execute_process(
  COMMAND ${COMET_SIM} --device comet --trace-file ${WORK_DIR}/broken.trace
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("malformed trace" "${rc}" 1)
expect_contains("malformed trace" "${err}" "line 2")
expect_contains("malformed trace" "${err}" "this is not a record")

# --- 3. Non-monotonic cycles: same diagnostic style.
file(WRITE ${WORK_DIR}/unsorted.trace "100 R 0x0\n200 W 0x40\n150 R 0x80\n")
execute_process(
  COMMAND ${COMET_SIM} --device comet --trace-file ${WORK_DIR}/unsorted.trace
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
expect_rc("unsorted trace" "${rc}" 1)
expect_contains("unsorted trace" "${err}" "non-monotonic")
expect_contains("unsorted trace" "${err}" "line 3")

# --- 4. Dump a generated trace, replay it flat and hybrid, check JSON.
execute_process(
  COMMAND ${COMET_SIM} --dump-trace ${WORK_DIR}/gen.trace
          --workload gcc_like --requests 500
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("dump-trace" "${rc}" 0)

foreach(device comet hybrid-comet)
  execute_process(
    COMMAND ${COMET_SIM} --device ${device}
            --trace-file ${WORK_DIR}/gen.trace
            --json ${WORK_DIR}/${device}.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  expect_rc("replay ${device}" "${rc}" 0)
  expect_contains("replay ${device}" "${out}" "gen.trace")
  file(READ ${WORK_DIR}/${device}.json json)
  expect_contains("json ${device}" "${json}" "\"trace_file\": ")
  expect_contains("json ${device}" "${json}" "gen.trace")
endforeach()

# --- 5. --dump-trace without a single workload: exit 2.
execute_process(
  COMMAND ${COMET_SIM} --dump-trace ${WORK_DIR}/bad.trace
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
expect_rc("dump-trace needs workload" "${rc}" 2)

message(STATUS "trace CLI tests passed")
