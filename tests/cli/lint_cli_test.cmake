# ctest driver for scripts/lint_comet.py. Invoked as:
#
#   cmake -DPYTHON=<python3> -DREPO_ROOT=<checkout root>
#         -P lint_cli_test.cmake
#
# Covers: (1) the planted-violation fixture tree reproduces
# tests/lint_fixture/expected.txt verbatim — every rule fires exactly
# once, at the pinned file:line, and the waived violation stays silent;
# (2) the real tree is clean (exit 0, no output); (3) --rules narrows
# the run to the selected rule; (4) an unknown rule is a usage error.

if(NOT DEFINED PYTHON OR NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "pass -DPYTHON=... and -DREPO_ROOT=...")
endif()
set(LINTER ${REPO_ROOT}/scripts/lint_comet.py)

function(expect_rc label rc expected)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${rc}")
  endif()
endfunction()

# --- 1. Fixture tree: exit 1 and byte-identical findings.
execute_process(
  COMMAND ${PYTHON} ${LINTER} --root tests/lint_fixture
  WORKING_DIRECTORY ${REPO_ROOT}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
expect_rc("fixture tree" "${rc}" 1)
file(READ ${REPO_ROOT}/tests/lint_fixture/expected.txt expected)
if(NOT out STREQUAL expected)
  message(FATAL_ERROR "fixture findings drifted from expected.txt:\n"
          "--- expected ---\n${expected}\n--- got ---\n${out}")
endif()

# --- 2. The real tree is clean.
execute_process(
  COMMAND ${PYTHON} ${LINTER}
  WORKING_DIRECTORY ${REPO_ROOT}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("real tree" "${rc}" 0)
if(NOT out STREQUAL "")
  message(FATAL_ERROR "real tree: expected no findings, got:\n${out}")
endif()

# --- 3. --rules selects a subset: only the no-deque finding remains.
execute_process(
  COMMAND ${PYTHON} ${LINTER} --root tests/lint_fixture --rules no-deque
  WORKING_DIRECTORY ${REPO_ROOT}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
expect_rc("rule subset" "${rc}" 1)
string(REGEX MATCHALL "\\[[a-z-]+\\]" tags "${out}")
if(NOT tags STREQUAL "[no-deque]")
  message(FATAL_ERROR "rule subset: expected exactly one [no-deque] "
          "finding, got tags '${tags}' in:\n${out}")
endif()

# --- 4. Unknown rule: usage error (exit 2), named in the diagnostic.
execute_process(
  COMMAND ${PYTHON} ${LINTER} --rules no-such-rule
  WORKING_DIRECTORY ${REPO_ROOT}
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("unknown rule" "${rc}" 2)
string(FIND "${err}" "no-such-rule" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "unknown rule: diagnostic must name it:\n${err}")
endif()

message(STATUS "lint_comet CLI tests passed")
