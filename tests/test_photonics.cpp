#include <gtest/gtest.h>

#include <cmath>

#include "materials/mlc_levels.hpp"
#include "materials/thermal_model.hpp"
#include "photonics/crosstalk.hpp"
#include "photonics/gst_cell.hpp"
#include "photonics/gst_switch.hpp"
#include "photonics/laser.hpp"
#include "photonics/losses.hpp"
#include "photonics/microring.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/soa.hpp"
#include "photonics/waveguide.hpp"
#include "photonics/wavelength_grid.hpp"
#include "util/units.hpp"

namespace cp = comet::photonics;
namespace cm = comet::materials;
namespace cu = comet::util;

// ----------------------------------------------------------- Table I

TEST(Losses, TableIValues) {
  const auto p = cp::LossParameters::paper();
  EXPECT_DOUBLE_EQ(p.coupling_loss_db, 1.0);
  EXPECT_DOUBLE_EQ(p.mr_drop_loss_db, 0.5);
  EXPECT_DOUBLE_EQ(p.mr_through_loss_db, 0.02);
  EXPECT_DOUBLE_EQ(p.eo_mr_drop_loss_db, 1.6);
  EXPECT_DOUBLE_EQ(p.eo_mr_through_loss_db, 0.33);
  EXPECT_DOUBLE_EQ(p.propagation_loss_db_per_cm, 0.1);
  EXPECT_DOUBLE_EQ(p.bending_loss_db_per_90deg, 0.01);
  EXPECT_DOUBLE_EQ(p.soa_gain_db, 20.0);
  EXPECT_DOUBLE_EQ(p.laser_wall_plug_efficiency, 0.2);
  EXPECT_DOUBLE_EQ(p.eo_tuning_power_uw_per_nm, 4.0);
  EXPECT_DOUBLE_EQ(p.max_power_at_cell_mw, 1.0);
  EXPECT_DOUBLE_EQ(p.intra_subarray_soa_power_mw, 1.4);
}

TEST(LossBudget, Accumulates) {
  cp::LossBudget budget;
  budget.add("coupler", 1.0);
  budget.add("mr through", 0.33, 45.0);
  budget.add("soa gain", -15.2);
  EXPECT_NEAR(budget.total_db(), 1.0 + 14.85 - 15.2, 1e-9);
  ASSERT_EQ(budget.items().size(), 3u);
  EXPECT_NEAR(budget.items()[1].total_db(), 14.85, 1e-9);
}

// ----------------------------------------------------------- microring

class MicroringTest : public ::testing::Test {
 protected:
  cp::LossParameters losses_ = cp::LossParameters::paper();
  cp::Microring eo_{cp::Microring::comet_access_design(1550.0), losses_};
  cp::Microring thermal_{
      cp::Microring::Design{.radius_um = 6.0,
                            .q_factor = 8000.0,
                            .resonance_nm = 1550.0,
                            .tuning_range_nm = 1.0,
                            .mechanism = cp::TuningMechanism::kThermal},
      losses_};
};

TEST_F(MicroringTest, EoTuningIsNanoseconds) {
  EXPECT_DOUBLE_EQ(eo_.tuning_latency_ns(), 2.0);  // paper: 2 ns [36]
}

TEST_F(MicroringTest, ThermalTuningIsMicroseconds) {
  EXPECT_GE(thermal_.tuning_latency_ns(), 1000.0);
}

TEST_F(MicroringTest, EoLossesExceedPassive) {
  EXPECT_GT(eo_.drop_loss_db(), thermal_.drop_loss_db());
  EXPECT_GT(eo_.through_loss_db(), thermal_.through_loss_db());
  EXPECT_DOUBLE_EQ(eo_.through_loss_db(), 0.33);
  EXPECT_DOUBLE_EQ(eo_.drop_loss_db(), 1.6);
}

TEST_F(MicroringTest, EoTuningPowerMatchesTableI) {
  EXPECT_NEAR(eo_.tuning_power_w(1.0), 4e-6, 1e-12);  // 4 uW/nm
  EXPECT_NEAR(eo_.tuning_power_w(-0.5), 2e-6, 1e-12);
}

TEST_F(MicroringTest, DropTransferPeaksOnResonance) {
  EXPECT_DOUBLE_EQ(eo_.drop_transfer(1550.0, 1550.0), 1.0);
  const double half = eo_.drop_transfer(1550.0 + eo_.linewidth_nm() / 2,
                                        1550.0);
  EXPECT_NEAR(half, 0.5, 1e-9);
  EXPECT_LT(eo_.drop_transfer(1551.0, 1550.0), 0.05);
}

TEST_F(MicroringTest, FsrReasonableForSixMicronRing) {
  // FSR = lambda^2 / (n_g * 2 pi R) ~ 15 nm for R = 6 um, n_g = 4.2.
  EXPECT_NEAR(eo_.fsr_nm(), 15.2, 1.0);
}

TEST_F(MicroringTest, RejectsBadDesign) {
  auto bad = cp::Microring::comet_access_design(1550.0);
  bad.q_factor = -1.0;
  EXPECT_THROW(cp::Microring(bad, losses_), std::invalid_argument);
}

// ----------------------------------------------------------- SOA

TEST(Soa, IntraSubarrayGainMatchesPaper) {
  const cp::Soa soa(cp::Soa::intra_subarray());
  EXPECT_DOUBLE_EQ(soa.params().gain_db, 15.2);
  EXPECT_DOUBLE_EQ(soa.power_when_enabled_mw(), 1.4);
}

TEST(Soa, LinearGainBelowSaturation) {
  const cp::Soa soa(cp::Soa::intra_subarray());
  const double out = soa.amplify_mw(0.01);
  EXPECT_NEAR(out, 0.01 * cu::db_to_ratio(15.2), 1e-9);
  EXPECT_NEAR(soa.effective_gain_db(0.01), 15.2, 1e-9);
}

TEST(Soa, SaturatesAtMaxOutput) {
  const cp::Soa soa(cp::Soa::intra_subarray());
  EXPECT_DOUBLE_EQ(soa.amplify_mw(10.0), soa.params().max_output_mw);
  EXPECT_LT(soa.effective_gain_db(10.0), 15.2);
}

TEST(Soa, RejectsNegativeInput) {
  const cp::Soa soa(cp::Soa::intra_subarray());
  EXPECT_THROW(soa.amplify_mw(-1.0), std::invalid_argument);
}

// ----------------------------------------------------------- laser

TEST(Laser, PowerScalesWithLoss) {
  const cp::Laser laser(0.2, 256);
  // 1 mW needed after 10 dB of loss -> 10 mW optical per wavelength.
  EXPECT_NEAR(laser.optical_power_per_wavelength_mw(1.0, 10.0), 10.0, 1e-9);
  // 256 wavelengths at 20 % wall plug -> 12.8 W electrical.
  EXPECT_NEAR(laser.electrical_power_w(1.0, 10.0), 12.8, 1e-9);
}

TEST(Laser, ZeroLossPassThrough) {
  const cp::Laser laser(0.5, 1);
  EXPECT_NEAR(laser.electrical_power_w(1.0, 0.0), 0.002, 1e-12);
}

TEST(Laser, RejectsBadParameters) {
  EXPECT_THROW(cp::Laser(0.0, 4), std::invalid_argument);
  EXPECT_THROW(cp::Laser(1.5, 4), std::invalid_argument);
  EXPECT_THROW(cp::Laser(0.2, 0), std::invalid_argument);
}

// ----------------------------------------------------------- waveguide

TEST(WaveguidePath, TableIArithmetic) {
  const cp::WaveguidePath path(cp::LossParameters::paper());
  // 2 cm + 4 bends: 0.2 + 0.04 dB.
  EXPECT_NEAR(path.path_loss_db(2.0, 4), 0.24, 1e-12);
}

TEST(MdmLink, FundamentalModeIsLossless) {
  const cp::MdmLink link(4);
  EXPECT_DOUBLE_EQ(link.mode_excess_loss_db(0), 0.0);
}

TEST(MdmLink, HigherModesLoseMore) {
  const cp::MdmLink link(4);
  for (int m = 1; m < 4; ++m) {
    EXPECT_GT(link.mode_excess_loss_db(m), link.mode_excess_loss_db(m - 1));
  }
}

TEST(MdmLink, Degree4IsCheapDegree16IsNot) {
  // Section III.C: degree 4 is achievable "without notable losses";
  // COSMOS would need degree 16, which is "extremely challenging".
  const cp::MdmLink comet(4);
  const cp::MdmLink cosmos(16);
  EXPECT_LT(comet.worst_mode_excess_loss_db(), 0.2);
  EXPECT_GT(cosmos.worst_mode_excess_loss_db(),
            4.0 * comet.worst_mode_excess_loss_db());
  EXPECT_GT(cosmos.required_width_nm(), 2.0 * comet.required_width_nm());
}

TEST(MdmLink, RejectsBadMode) {
  const cp::MdmLink link(4);
  EXPECT_THROW(link.mode_excess_loss_db(4), std::invalid_argument);
  EXPECT_THROW(link.mode_excess_loss_db(-1), std::invalid_argument);
}

// ----------------------------------------------------------- GST cell

class GstCellTest : public ::testing::Test {
 protected:
  const cm::PcmMaterial& gst_ = cm::PcmMaterial::get(cm::Pcm::kGst);
  cp::GstCell cell_{gst_, cp::GstCellGeometry::paper()};
};

TEST_F(GstCellTest, PaperGeometry) {
  EXPECT_DOUBLE_EQ(cell_.geometry().width_nm, 480.0);
  EXPECT_DOUBLE_EQ(cell_.geometry().thickness_nm, 20.0);
  EXPECT_DOUBLE_EQ(cell_.geometry().length_um, 2.0);
}

TEST_F(GstCellTest, AmorphousInsertionLossNearPaper) {
  // Section II.B: 0.24 dB for the amorphous state.
  EXPECT_NEAR(cell_.amorphous_insertion_loss_db(), 0.24, 0.1);
}

TEST_F(GstCellTest, CrystallineExtinctionNearPaper) {
  // Section II.B: up to 21.8 dB for the crystalline state.
  EXPECT_NEAR(cell_.crystalline_extinction_db(), 21.8, 2.5);
}

TEST_F(GstCellTest, ContrastsNear95Percent) {
  // Section III.B / conclusions: ~95-96 % contrast at the chosen geometry.
  EXPECT_NEAR(cell_.transmission_contrast(), 0.95, 0.03);
  EXPECT_NEAR(cell_.absorption_contrast(), 0.95, 0.03);
}

TEST_F(GstCellTest, TransmissionStrictlyDecreasingInFraction) {
  double prev = cell_.transmission(0.0);
  for (double f = 0.05; f <= 1.0; f += 0.05) {
    const double t = cell_.transmission(f);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST_F(GstCellTest, ThicknessDominatesContrastThenSaturates) {
  // Fig. 4: contrast climbs steeply with film thickness, then saturates
  // near 20 nm (the paper's starred design point); past the knee the
  // curve is flat to within ~1 % because the amorphous state starts
  // losing light too.
  const auto contrast_at = [&](double t_nm) {
    return cp::GstCell(gst_, {.width_nm = 480.0, .thickness_nm = t_nm,
                              .length_um = 2.0})
        .transmission_contrast();
  };
  EXPECT_LT(contrast_at(5.0), contrast_at(10.0));
  EXPECT_LT(contrast_at(10.0), contrast_at(15.0));
  const double knee = contrast_at(20.0);
  EXPECT_GT(knee, 0.9);
  EXPECT_NEAR(contrast_at(25.0), knee, 0.01);
  EXPECT_NEAR(contrast_at(30.0), knee, 0.01);
}

TEST_F(GstCellTest, WidthEffectIsNegligible) {
  // Fig. 4: "the impact of PCM waveguide width ... is negligible".
  cp::GstCell narrow(gst_, {.width_nm = 400.0, .thickness_nm = 20.0,
                            .length_um = 2.0});
  cp::GstCell wide(gst_, {.width_nm = 600.0, .thickness_nm = 20.0,
                          .length_um = 2.0});
  EXPECT_NEAR(narrow.transmission_contrast(), wide.transmission_contrast(),
              0.02);
}

TEST_F(GstCellTest, CBandContrastVariationSmall) {
  // Section III.B: max wavelength-dependent transmission contrast
  // variation ~1.4 % across the C-band.
  const double lo = cell_.transmission_contrast(1530.0);
  const double hi = cell_.transmission_contrast(1565.0);
  EXPECT_LT(std::abs(hi - lo) / lo, 0.03);
}

TEST_F(GstCellTest, SixteenLevelSpacingNearSixPercent) {
  // Section III.B: 16 levels with ~6 % spacing.
  cm::PcmThermalModel model(cm::GstThermalCalibration::calibrated());
  const auto table =
      cm::MlcLevelTable::build(4, cm::ProgrammingMode::kAmorphousReset,
                               model, cell_.transmission_curve());
  EXPECT_NEAR(table.level_spacing(), 0.06, 0.01);
}

TEST_F(GstCellTest, RejectsBadGeometry) {
  EXPECT_THROW(cp::GstCell(gst_, {.width_nm = -1.0, .thickness_nm = 20.0,
                                  .length_um = 2.0}),
               std::invalid_argument);
}

// ----------------------------------------------------------- GST switch

TEST(GstSwitch, StartsBlockingAndToggles) {
  cp::GstSwitch sw(cp::LossParameters::paper());
  EXPECT_EQ(sw.state(), cp::GstSwitch::State::kBlocking);
  EXPECT_DOUBLE_EQ(sw.set_state(cp::GstSwitch::State::kCoupling), 100.0);
  EXPECT_EQ(sw.state(), cp::GstSwitch::State::kCoupling);
  EXPECT_DOUBLE_EQ(sw.set_state(cp::GstSwitch::State::kCoupling), 0.0);
}

TEST(GstSwitch, LossesMatchPaper) {
  cp::GstSwitch sw(cp::LossParameters::paper());
  EXPECT_DOUBLE_EQ(sw.coupling_loss_db(), 0.2);   // Section III.C
  EXPECT_GT(sw.blocking_isolation_db(), 20.0);
  EXPECT_DOUBLE_EQ(cp::GstSwitch::transition_latency_ns(), 100.0);
}

// ----------------------------------------------------------- crosstalk

TEST(Crosstalk, PaperCalibration) {
  const cp::CrosstalkModel model(cp::CrosstalkModel::paper());
  // Section II.B: 750 pJ write leaks ~12.6 pJ (-17.75 dB) into a
  // neighbour and shifts its crystalline fraction by ~8 %.
  EXPECT_NEAR(model.coupled_energy_pj(750.0), 12.6, 0.3);
  EXPECT_NEAR(model.fraction_shift(750.0), 0.08, 0.005);
}

TEST(Crosstalk, SingleWriteCorruptsFourBitCell) {
  const cp::CrosstalkModel model(cp::CrosstalkModel::paper());
  // 4-bit cell has 1/16 fraction spacing; one adjacent 750 pJ write
  // (8 % shift) exceeds half a level (3.1 %): corruption is immediate.
  EXPECT_EQ(model.writes_to_corruption(750.0, 1.0 / 16.0), 1);
}

TEST(Crosstalk, LowerDensityToleratesMoreWrites) {
  const cp::CrosstalkModel model(cp::CrosstalkModel::paper());
  const int b4 = model.writes_to_corruption(750.0, 1.0 / 16.0);
  const int b2 = model.writes_to_corruption(750.0, 1.0 / 4.0);
  const int b1 = model.writes_to_corruption(750.0, 1.0);
  EXPECT_LE(b4, b2);
  EXPECT_LT(b2, b1);
}

TEST(Crosstalk, RejectsBadParams) {
  EXPECT_THROW(cp::CrosstalkModel({.coupling_db = 3.0,
                                   .fraction_shift_per_pj = 0.01}),
               std::invalid_argument);
}

// ----------------------------------------------------------- WDM grid

TEST(WavelengthGrid, SpansCBand) {
  const cp::WavelengthGrid grid(256);
  EXPECT_EQ(grid.channels(), 256);
  EXPECT_DOUBLE_EQ(grid.channel_nm(0), 1530.0);
  EXPECT_DOUBLE_EQ(grid.channel_nm(255), 1565.0);
  EXPECT_GT(grid.spacing_ghz(), 0.0);
}

TEST(WavelengthGrid, SingleChannelCentred) {
  const cp::WavelengthGrid grid(1);
  EXPECT_DOUBLE_EQ(grid.channel_nm(0), 1547.5);
  EXPECT_DOUBLE_EQ(grid.spacing_nm(), 0.0);
}

TEST(WavelengthGrid, RejectsBadPlan) {
  EXPECT_THROW(cp::WavelengthGrid(0), std::invalid_argument);
  EXPECT_THROW(cp::WavelengthGrid(4, 1565.0, 1530.0), std::invalid_argument);
}

TEST(WavelengthGrid, ChannelIndexBounds) {
  const cp::WavelengthGrid grid(8);
  EXPECT_THROW(grid.channel_nm(8), std::out_of_range);
  EXPECT_THROW(grid.channel_nm(-1), std::out_of_range);
}

// ----------------------------------------------------------- detector

TEST(Photodetector, SensitivityFloor) {
  const cp::Photodetector pd(cp::Photodetector::typical());
  EXPECT_TRUE(pd.detectable(0.1));
  EXPECT_FALSE(pd.detectable(0.001));  // -30 dBm < -20 dBm floor
}

TEST(Photodetector, LevelDiscrimination) {
  const cp::Photodetector pd(cp::Photodetector::typical());
  EXPECT_TRUE(pd.distinguishable(0.10, 0.04));
  EXPECT_FALSE(pd.distinguishable(0.100, 0.0999));
}

TEST(Photodetector, MaxTolerableLossShrinksWithBitDensity) {
  const cp::Photodetector pd(cp::Photodetector::typical());
  // 1 mW launch; level gap = full-scale / number of gaps.
  const double b1 = pd.max_tolerable_loss_db(1.0, 0.90);
  const double b2 = pd.max_tolerable_loss_db(1.0, 0.30);
  const double b4 = pd.max_tolerable_loss_db(1.0, 0.06);
  EXPECT_GT(b1, b2);
  EXPECT_GT(b2, b4);
  EXPECT_GT(b4, 0.0);
}
