#include <gtest/gtest.h>

#include <vector>

#include "core/comet_config.hpp"
#include "core/comet_memory.hpp"
#include "core/power_model.hpp"
#include "cosmos/cosmos_config.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "cosmos/crossbar.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "photonics/losses.hpp"

namespace cx = comet::cosmos;
namespace cc = comet::core;
namespace cp = comet::photonics;
namespace ms = comet::memsim;

// ------------------------------------------------------------- config

TEST(CosmosConfig, CorrectedGeometry) {
  const auto c = cx::CosmosConfig::paper();
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.banks, 16);
  EXPECT_EQ(c.bits_per_cell, 2);  // corrected from 4
  EXPECT_EQ(c.rows, 16384u);
  EXPECT_EQ(c.cols, 16384u);
  EXPECT_EQ(c.subarray_rows, 32);
  EXPECT_EQ(c.subarray_cols, 32);
}

TEST(CosmosConfig, CorrectedLevelsAsymmetric) {
  const auto c = cx::CosmosConfig::paper();
  // Section IV.B: (0.99, 0.90, 0.81, 0.72) at 9 % spacing.
  ASSERT_EQ(c.levels.size(), 4u);
  for (std::size_t i = 1; i < c.levels.size(); ++i) {
    EXPECT_NEAR(c.levels[i - 1] - c.levels[i], 0.09, 1e-9);
  }
}

TEST(CosmosConfig, LineBytes) {
  EXPECT_EQ(cx::CosmosConfig::paper().line_bytes(), 128u);  // 128 b x 8
}

TEST(CosmosConfig, RejectsUncorrectedBitDensity) {
  auto c = cx::CosmosConfig::paper();
  c.bits_per_cell = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// ------------------------------------------------------------- power

TEST(CosmosPower, LaserDominates) {
  const cx::CosmosPowerModel model(cx::CosmosConfig::paper(),
                                   cp::LossParameters::paper());
  const auto stack = model.breakdown();
  EXPECT_GT(stack.component_w("laser"), 0.8 * stack.total_w());
}

TEST(CosmosPower, CometIsAboutAQuarter) {
  // Conclusions: "COMET consumes only 26 % of the power ... of the
  // best-known prior work".
  const auto losses = cp::LossParameters::paper();
  const double cosmos_w =
      cx::CosmosPowerModel(cx::CosmosConfig::paper(), losses)
          .breakdown()
          .total_w();
  const double comet_w =
      cc::CometPowerModel(cc::CometConfig::comet_4b(), losses)
          .breakdown()
          .total_w();
  EXPECT_NEAR(comet_w / cosmos_w, 0.26, 0.04);
}

TEST(CosmosPower, LaunchLossFarAboveComet) {
  const auto losses = cp::LossParameters::paper();
  const double cosmos_db =
      cx::CosmosPowerModel(cx::CosmosConfig::paper(), losses)
          .launch_path_budget()
          .total_db();
  const double comet_db = cc::CometPowerModel(cc::CometConfig::comet_4b(),
                                              losses)
                              .launch_path_budget()
                              .total_db();
  EXPECT_GT(cosmos_db, comet_db + 10.0);
}

// ----------------------------------------------------------- crossbar

TEST(Crossbar, CleanDepositReadsBack) {
  cx::Crossbar xbar(8, 8, 4);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      xbar.set_state(r, c, (r * 8 + c) % 16);
    }
  }
  EXPECT_DOUBLE_EQ(xbar.corrupted_fraction(), 0.0);
  EXPECT_EQ(xbar.read(3, 5), (3 * 8 + 5) % 16);
}

TEST(Crossbar, WriteDriftsRowNeighbours) {
  cx::Crossbar xbar(3, 1, 4);
  xbar.set_state(0, 0, 0);
  xbar.set_state(2, 0, 0);
  xbar.write(1, 0, 15, 750.0);
  // Neighbours picked up ~8 % crystalline fraction each.
  EXPECT_NEAR(xbar.fraction(0, 0), 0.08, 0.005);
  EXPECT_NEAR(xbar.fraction(2, 0), 0.08, 0.005);
  // In a 16-level cell that is already more than half a level.
  EXPECT_NE(xbar.read(0, 0), 0);
}

TEST(Crossbar, TwoBitCellsTolerateOneWrite) {
  // The corrected COSMOS drops to 4 levels exactly so a single 8 % shift
  // stays within half a level (1/6 fraction spacing per half level).
  cx::Crossbar xbar(3, 1, 2);
  xbar.set_state(0, 0, 0);
  xbar.write(1, 0, 3, 750.0);
  EXPECT_EQ(xbar.read(0, 0), 0);
  // But repeated writes still walk the neighbour off its level.
  xbar.write(1, 0, 2, 750.0);
  xbar.write(1, 0, 3, 750.0);
  EXPECT_NE(xbar.read(0, 0), 0);
}

TEST(Crossbar, EdgeRowsHaveOneNeighbour) {
  cx::Crossbar xbar(2, 1, 4);
  xbar.set_state(0, 0, 0);
  EXPECT_NO_THROW(xbar.write(1, 0, 7, 750.0));  // bottom edge
  EXPECT_NO_THROW(xbar.write(0, 0, 7, 750.0));  // top edge
}

TEST(Crossbar, CorruptionMonotoneUnderHammering) {
  cx::Crossbar xbar(16, 16, 4);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) xbar.set_state(r, c, 8);
  }
  double prev_err = xbar.mean_level_error();
  std::vector<int> levels(16, 12);
  for (int pass = 0; pass < 3; ++pass) {
    for (int r = 0; r < 16; r += 2) xbar.write_row(r, levels);
    const double err = xbar.mean_level_error();
    EXPECT_GE(err, prev_err);
    prev_err = err;
  }
  EXPECT_GT(xbar.corrupted_fraction(), 0.3);
}

TEST(Crossbar, RejectsBadAccess) {
  cx::Crossbar xbar(4, 4, 2);
  EXPECT_THROW(xbar.read(4, 0), std::out_of_range);
  EXPECT_THROW(xbar.write(0, 0, 4, 750.0), std::out_of_range);
  std::vector<int> wrong(3, 0);
  EXPECT_THROW(xbar.write_row(0, wrong), std::invalid_argument);
}

// -------------------------------------------------------- device model

TEST(CosmosDevice, TableIITimings) {
  const auto d = cx::cosmos_device_model(cx::CosmosConfig::paper(),
                                         cp::LossParameters::paper());
  EXPECT_EQ(d.name, "COSMOS");
  // Subtractive read: 25 + 250 + 25 ns on the latency path.
  EXPECT_EQ(d.timing.read_occupancy_ps, 300000u);
  // Destructive-read restore occupies the bank for the full write.
  EXPECT_EQ(d.timing.read_tail_ps, 1600000u);
  EXPECT_EQ(d.timing.write_occupancy_ps, 1600000u);
  EXPECT_EQ(d.timing.interface_ps, 105000u);
  EXPECT_EQ(d.timing.burst_ps, 8000u);
  EXPECT_NO_THROW(d.validate());
}

TEST(CosmosDevice, CometOutperformsOnSaturatedTrace) {
  const auto losses = cp::LossParameters::paper();
  auto profile = ms::profile_by_name("gcc_like");
  profile.avg_interarrival_ns = 0.5;
  const ms::TraceGenerator gen(profile, 13);
  const auto trace = gen.generate(20000, 128);

  const auto cosmos_stats =
      ms::MemorySystem(cx::cosmos_device_model(cx::CosmosConfig::paper(),
                                               losses))
          .run(trace);
  const auto comet_stats =
      ms::MemorySystem(cc::CometMemory::device_model(
                           cc::CometConfig::comet_4b(), losses))
          .run(trace);
  // Paper: ~5.1x bandwidth, ~13x EPB, ~3x latency. Accept broad bands
  // (the single-workload factor varies around the 8-workload average).
  const double bw_gain =
      comet_stats.bandwidth_gbps() / cosmos_stats.bandwidth_gbps();
  EXPECT_GT(bw_gain, 3.0);
  EXPECT_LT(bw_gain, 14.0);
  EXPECT_GT(cosmos_stats.epb_pj_per_bit(), 5.0 * comet_stats.epb_pj_per_bit());
}
