// Memory-controller scheduling tests: policy/config plumbing, the
// bit-identity anchor (unbounded-queue fcfs == legacy arrival-order
// replay on every registry device), genuine reordering effects (FR-FCFS
// open-row batching, read-first write deferral), write-drain hysteresis
// edges, bounded-queue backpressure, hybrid backend routing, and the
// driver/CLI/sweep integration.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "config/experiment.hpp"
#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "hybrid/tiered_system.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"
#include "util/units.hpp"

namespace ms = comet::memsim;
namespace sc = comet::sched;
namespace cu = comet::util;
namespace hy = comet::hybrid;

namespace {

/// Single-channel single-bank DRAM-style device with a strong row
/// buffer: 1000 ns accesses that drop to 100 ns on an open-row hit, so
/// FR-FCFS batching is clearly visible.
ms::DeviceModel row_device() {
  ms::DeviceModel d;
  d.name = "rowdev";
  d.capacity_bytes = 1ull << 30;
  d.timing.channels = 1;
  d.timing.banks_per_channel = 1;
  d.timing.line_bytes = 64;
  d.timing.read_occupancy_ps = cu::ns_to_ps(1000);
  d.timing.write_occupancy_ps = cu::ns_to_ps(1000);
  d.timing.burst_ps = cu::ns_to_ps(1);
  d.timing.interface_ps = cu::ns_to_ps(5);
  d.timing.has_row_buffer = true;
  d.timing.row_size_bytes = 8192;
  d.timing.row_hit_saving_ps = cu::ns_to_ps(900);
  d.timing.queue_depth = 64;
  d.energy.read_pj_per_bit = 1.0;
  d.energy.write_pj_per_bit = 2.0;
  return d;
}

/// Fast-read, very-slow-write OPCM-style device (no row buffer).
ms::DeviceModel asym_device() {
  ms::DeviceModel d;
  d.name = "asymdev";
  d.capacity_bytes = 1ull << 30;
  d.timing.channels = 1;
  d.timing.banks_per_channel = 1;
  d.timing.line_bytes = 64;
  d.timing.read_occupancy_ps = cu::ns_to_ps(50);
  d.timing.write_occupancy_ps = cu::ns_to_ps(2000);
  d.timing.burst_ps = cu::ns_to_ps(1);
  d.timing.interface_ps = cu::ns_to_ps(5);
  d.timing.queue_depth = 64;
  d.energy.read_pj_per_bit = 1.0;
  d.energy.write_pj_per_bit = 20.0;
  return d;
}

ms::Request make_req(std::uint64_t id, std::uint64_t arrival_ps, ms::Op op,
                     std::uint64_t addr) {
  ms::Request r;
  r.id = id;
  r.arrival_ps = arrival_ps;
  r.op = op;
  r.address = addr;
  r.size_bytes = 64;
  return r;
}

sc::ControllerConfig unbounded(sc::Policy policy) {
  return sc::ControllerConfig::with_depths(policy, 0, 0);
}

ms::SimStats run_with(const ms::DeviceModel& model,
                      const sc::ControllerConfig& config,
                      const std::vector<ms::Request>& requests) {
  const sc::ScheduledSystem system(model, config);
  return system.run(requests, "crafted");
}

/// Exhaustive SimStats comparison for the bit-identity anchors (the
/// scheduler-breakdown fields are intentionally excluded: the legacy
/// path has none).
void expect_bit_identical(const ms::SimStats& a, const ms::SimStats& b,
                          const std::string& label) {
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << label;
  EXPECT_EQ(a.span_ps, b.span_ps) << label;
  const auto same_dist = [&](const cu::RunningStats& x,
                             const cu::RunningStats& y, const char* which) {
    EXPECT_EQ(x.count(), y.count()) << label << " " << which;
    EXPECT_EQ(x.mean(), y.mean()) << label << " " << which;
    EXPECT_EQ(x.stddev(), y.stddev()) << label << " " << which;
    EXPECT_EQ(x.min(), y.min()) << label << " " << which;
    EXPECT_EQ(x.max(), y.max()) << label << " " << which;
    EXPECT_EQ(x.sum(), y.sum()) << label << " " << which;
    EXPECT_EQ(x.p50(), y.p50()) << label << " " << which;
    EXPECT_EQ(x.p95(), y.p95()) << label << " " << which;
    EXPECT_EQ(x.p99(), y.p99()) << label << " " << which;
  };
  same_dist(a.read_latency_ns, b.read_latency_ns, "read");
  same_dist(a.write_latency_ns, b.write_latency_ns, "write");
  same_dist(a.queue_delay_ns, b.queue_delay_ns, "queue");
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << label;
  EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << label;
  EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.cache_fills, b.cache_fills) << label;
  EXPECT_EQ(a.writebacks, b.writebacks) << label;
  EXPECT_EQ(a.dram_tier_energy_pj, b.dram_tier_energy_pj) << label;
  EXPECT_EQ(a.backend_tier_energy_pj, b.backend_tier_energy_pj) << label;
}

}  // namespace

// ----------------------------------------------------- policy / config

TEST(SchedPolicy, NamesRoundTrip) {
  for (const auto policy : {sc::Policy::kFcfs, sc::Policy::kFrFcfs,
                            sc::Policy::kReadFirst}) {
    EXPECT_EQ(sc::policy_from_name(sc::policy_name(policy)), policy);
  }
  EXPECT_THROW(sc::policy_from_name("lifo"), std::invalid_argument);
  EXPECT_THROW(sc::policy_from_name(""), std::invalid_argument);
}

TEST(SchedConfig, Validation) {
  EXPECT_NO_THROW(sc::ControllerConfig{}.validate());
  sc::ControllerConfig c;
  c.read_queue_depth = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.drain_high_watermark = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.drain_low_watermark = c.drain_high_watermark + 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.write_queue_depth = 8;  // high watermark (28) beyond the bound
  EXPECT_THROW(c.validate(), std::invalid_argument);
  // Watermark == queue depth is a legal edge (drain on a full queue).
  c = sc::ControllerConfig::with_depths(sc::Policy::kReadFirst, 8, 8);
  c.drain_high_watermark = 8;
  EXPECT_NO_THROW(c.validate());
}

TEST(SchedConfig, WithDepthsDerivesWatermarks) {
  const auto c = sc::ControllerConfig::with_depths(sc::Policy::kReadFirst,
                                                   16, 16);
  EXPECT_EQ(c.read_queue_depth, 16);
  EXPECT_EQ(c.write_queue_depth, 16);
  EXPECT_EQ(c.drain_high_watermark, 14);  // 7/8
  EXPECT_EQ(c.drain_low_watermark, 6);    // 3/8
  // Unbounded keeps the depth-32 defaults.
  const auto u = unbounded(sc::Policy::kFcfs);
  EXPECT_EQ(u.drain_high_watermark, 28);
  EXPECT_EQ(u.drain_low_watermark, 12);
  // Degenerate single-slot queue still validates.
  EXPECT_NO_THROW(
      sc::ControllerConfig::with_depths(sc::Policy::kReadFirst, 1, 1));
}

// ------------------------------------------- the bit-identity anchor

TEST(SchedFcfs, UnboundedIsBitIdenticalOnEveryRegistryDevice) {
  // The acceptance criterion: an unbounded-queue fcfs controller must
  // reproduce today's arrival-order replay bit for bit on every flat
  // and hybrid registry device, so every existing result stays a
  // regression gate.
  std::vector<std::string> tokens = comet::driver::known_devices();
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    tokens.push_back(token);
  }
  for (const char* workload : {"gcc_like", "lbm_like"}) {
    const auto profile = ms::profile_by_name(workload);
    for (const auto& token : tokens) {
      const auto spec = comet::driver::make_device_spec(token);
      const auto legacy_engine = spec.make_engine();
      const auto sched_engine = spec.make_engine(unbounded(sc::Policy::kFcfs));
      auto legacy_source = ms::TraceGenerator(profile, 7).stream(2000, 128);
      auto sched_source = ms::TraceGenerator(profile, 7).stream(2000, 128);
      const auto legacy = legacy_engine->run(legacy_source, workload);
      const auto scheduled = sched_engine->run(sched_source, workload);
      EXPECT_FALSE(legacy.is_scheduled()) << token;
      EXPECT_TRUE(scheduled.is_scheduled()) << token;
      EXPECT_EQ(scheduled.sched_policy, "fcfs") << token;
      // fcfs hands off at arrival: zero controller-queue time, and the
      // device service interval is the whole end-to-end latency.
      EXPECT_EQ(scheduled.sched_queue_delay_ns.max(), 0.0) << token;
      expect_bit_identical(legacy, scheduled,
                           token + std::string("/") + workload);
    }
  }
}

// ------------------------------------------------- reordering effects

TEST(SchedFrFcfs, BatchesOpenRowHits) {
  // Forty reads alternating between two rows of one bank, arriving in a
  // burst. fcfs replays them in order — every access is a row miss —
  // while frfcfs holds them in the read queue and issues all of row A
  // before row B, converting most accesses into row hits.
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 40; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kRead,
                            (i % 2) ? 8192u : 0u));
  }
  const auto fcfs = run_with(row_device(), unbounded(sc::Policy::kFcfs), reqs);
  const auto frfcfs =
      run_with(row_device(), unbounded(sc::Policy::kFrFcfs), reqs);
  EXPECT_EQ(frfcfs.reads, 40u);
  // Reordering measurably improves both wall clock and mean latency.
  EXPECT_LT(frfcfs.span_ps, fcfs.span_ps);
  EXPECT_LT(frfcfs.read_latency_ns.mean(), fcfs.read_latency_ns.mean());
  // And the controller-queue wait is now visible in the breakdown.
  EXPECT_GT(frfcfs.sched_queue_delay_ns.mean(), 0.0);
  EXPECT_EQ(fcfs.sched_queue_delay_ns.max(), 0.0);
  // End-to-end latency == controller queue + device-relative service
  // cannot be asserted per-sample here, but the means must compose.
  EXPECT_GT(frfcfs.service_latency_ns.count(), 0u);
}

TEST(SchedReadFirst, ReadsOvertakeSlowWrites) {
  // A burst of slow writes followed by latency-critical reads: fcfs
  // serializes the reads behind every write; read-first lets the reads
  // jump the write queue.
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kWrite, std::uint64_t(i) * 64));
  }
  for (int i = 10; i < 20; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto fcfs = run_with(asym_device(), unbounded(sc::Policy::kFcfs), reqs);
  const auto rf =
      run_with(asym_device(), unbounded(sc::Policy::kReadFirst), reqs);
  EXPECT_LT(rf.read_latency_ns.mean(), fcfs.read_latency_ns.mean());
  EXPECT_GE(rf.write_latency_ns.mean(), fcfs.write_latency_ns.mean());
  EXPECT_GT(rf.sched_queue_delay_ns.mean(), 0.0);
}

// --------------------------------------------- write-drain hysteresis

TEST(SchedReadFirst, DrainTriggersAtWatermarkEqualToDepth) {
  // Edge case: high watermark == write queue depth — drain mode can
  // only engage on a completely full queue, and late writes stall at
  // admission while it is full.
  auto config = sc::ControllerConfig::with_depths(sc::Policy::kReadFirst,
                                                  0, 4);
  config.drain_high_watermark = 4;
  config.drain_low_watermark = 0;
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kWrite, std::uint64_t(i) * 64));
  }
  const auto stats = run_with(asym_device(), config, reqs);
  EXPECT_EQ(stats.writes, 8u);
  EXPECT_GE(stats.write_drains, 1u);
  EXPECT_GE(stats.drained_writes, 4u);
  EXPECT_GE(stats.admit_stalls, 1u);
  // No reads existed to stall behind the drain.
  EXPECT_EQ(stats.drain_stalls, 0u);
}

TEST(SchedReadFirst, DrainStallsCountReadsWaitingBehindADrain) {
  // Enough writes to trip the watermark while reads are pending.
  auto config = sc::ControllerConfig::with_depths(sc::Policy::kReadFirst,
                                                  0, 8);
  config.drain_high_watermark = 4;
  config.drain_low_watermark = 1;
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 12; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kWrite, std::uint64_t(i) * 64));
  }
  for (int i = 12; i < 20; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto stats = run_with(asym_device(), config, reqs);
  EXPECT_GE(stats.write_drains, 1u);
  EXPECT_GT(stats.drain_stalls, 0u);
}

TEST(SchedReadFirst, ZeroWriteStreamNeverDrains) {
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 50; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kRead, std::uint64_t(i % 7) * 64));
  }
  const auto stats =
      run_with(asym_device(), unbounded(sc::Policy::kReadFirst), reqs);
  EXPECT_EQ(stats.reads, 50u);
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.write_drains, 0u);
  EXPECT_EQ(stats.drained_writes, 0u);
  EXPECT_EQ(stats.drain_stalls, 0u);
  EXPECT_EQ(stats.write_queue_occupancy.max(), 0.0);
}

TEST(SchedController, BoundedReadQueueBackpressures) {
  auto config = sc::ControllerConfig::with_depths(sc::Policy::kFrFcfs, 2, 0);
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 12; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto bounded = run_with(row_device(), config, reqs);
  const auto open =
      run_with(row_device(), unbounded(sc::Policy::kFrFcfs), reqs);
  EXPECT_EQ(bounded.reads, 12u);
  EXPECT_GT(bounded.admit_stalls, 0u);
  EXPECT_EQ(open.admit_stalls, 0u);
  // The two-slot window sees at most two waiting reads.
  EXPECT_LE(bounded.read_queue_occupancy.max(), 2.0);
}

// ---------------------------------------------------- contract & misc

TEST(SchedController, RejectsUnsortedDemandWithContext) {
  const ms::MemorySystem system(asym_device());
  sc::Controller controller(system, unbounded(sc::Policy::kFrFcfs), "t");
  controller.feed(make_req(0, 1000, ms::Op::kRead, 0));
  try {
    controller.feed(make_req(1, 500, ms::Op::kRead, 64));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("index 1"), std::string::npos)
        << e.what();
  }
}

TEST(SchedController, FeedAfterFinishAndDoubleFinishThrow) {
  const ms::MemorySystem system(asym_device());
  sc::Controller controller(system, unbounded(sc::Policy::kReadFirst), "t");
  controller.feed(make_req(0, 0, ms::Op::kRead, 0));
  (void)controller.finish();
  EXPECT_THROW(controller.feed(make_req(1, 1, ms::Op::kRead, 64)),
               std::logic_error);
  EXPECT_THROW(controller.finish(), std::logic_error);
}

TEST(SchedController, EmptyStreamFinishes) {
  const ms::MemorySystem system(asym_device());
  sc::Controller controller(system, unbounded(sc::Policy::kFrFcfs), "t");
  const auto stats = controller.finish();
  EXPECT_TRUE(stats.is_scheduled());
  EXPECT_EQ(stats.reads + stats.writes, 0u);
}

TEST(SchedEngine, ScheduledSystemIsStatelessAcrossRuns) {
  const sc::ScheduledSystem system(row_device(),
                                   unbounded(sc::Policy::kFrFcfs));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 30; ++i) {
    reqs.push_back(make_req(std::uint64_t(i), std::uint64_t(i),
                            ms::Op::kRead, (i % 2) ? 8192u : 0u));
  }
  const auto first = system.run(reqs);
  const auto second = system.run(reqs);
  expect_bit_identical(first, second, "rerun");
}

// -------------------------------------------------- hybrid integration

TEST(SchedHybrid, FcfsUnboundedBackendMatchesDirectTiering) {
  const auto spec = comet::driver::make_device_spec("hybrid-comet");
  const hy::TieredSystem direct(*spec.tiered);
  const hy::TieredSystem scheduled(*spec.tiered,
                                   unbounded(sc::Policy::kFcfs));
  const auto profile = ms::profile_by_name("mcf_like");
  auto direct_source = ms::TraceGenerator(profile, 3).stream(2500, 128);
  auto sched_source = ms::TraceGenerator(profile, 3).stream(2500, 128);
  const auto a = direct.run(direct_source, "mcf_like");
  const auto b = scheduled.run(sched_source, "mcf_like");
  EXPECT_FALSE(a.is_scheduled());
  EXPECT_TRUE(b.is_scheduled());
  expect_bit_identical(a, b, "hybrid-fcfs");
}

TEST(SchedHybrid, BackendControllerSurfacesOnCombinedStats) {
  const auto spec = comet::driver::make_device_spec("hybrid-epcm");
  const hy::TieredSystem system(
      *spec.tiered,
      sc::ControllerConfig::with_depths(sc::Policy::kFrFcfs, 16, 16));
  const auto profile = ms::profile_by_name("lbm_like");
  auto source = ms::TraceGenerator(profile, 5).stream(3000, 128);
  const auto tiered = system.run_tiered(source, "lbm_like");
  EXPECT_TRUE(tiered.combined.is_scheduled());
  EXPECT_EQ(tiered.combined.sched_policy, "frfcfs");
  EXPECT_TRUE(tiered.backend.is_scheduled());
  // The DRAM tier stays direct.
  EXPECT_FALSE(tiered.dram.is_scheduled());
  // The backend served traffic through the controller queues.
  EXPECT_EQ(tiered.combined.sched_queue_delay_ns.count(),
            tiered.backend.reads + tiered.backend.writes);
}

// ------------------------------------------------- driver integration

TEST(SchedOptions, FlagsParseAndValidate) {
  const auto opt = comet::driver::parse_args(
      {"--device", "comet", "--schedule", "frfcfs", "--read-q", "16",
       "--write-q", "8"});
  EXPECT_EQ(opt.schedule, "frfcfs");
  const auto config = comet::driver::scheduler_from_options(opt);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->policy, sc::Policy::kFrFcfs);
  EXPECT_EQ(config->read_queue_depth, 16);
  EXPECT_EQ(config->write_queue_depth, 8);
  EXPECT_EQ(config->drain_high_watermark, 7);
  EXPECT_EQ(config->drain_low_watermark, 3);

  EXPECT_THROW(comet::driver::parse_args({"--schedule", "rr"}),
               std::invalid_argument);
  EXPECT_THROW(comet::driver::parse_args({"--read-q", "4"}),
               std::invalid_argument);
  // Drain watermarks only mean something to read-first; anything else
  // would silently ignore them, so it exits 2 at parse time.
  EXPECT_THROW(comet::driver::parse_args(
                   {"--schedule", "frfcfs", "--drain-high", "12"}),
               std::invalid_argument);
  EXPECT_THROW(
      comet::driver::parse_args({"--schedule", "read-first", "--write-q",
                                 "8", "--drain-high", "50"}),
      std::invalid_argument);
}

TEST(SchedSweep, PolicyAxisExpandsTheMatrix) {
  const auto spec = comet::config::ExperimentBuilder()
                        .name("axis")
                        .device("comet")
                        .device("hybrid-comet")
                        .workload("gcc_like")
                        .schedule({sc::Policy::kFcfs, sc::Policy::kFrFcfs,
                                   sc::Policy::kReadFirst})
                        .requests({500})
                        .build();
  const auto jobs = comet::driver::build_matrix(spec);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].controller->policy, sc::Policy::kFcfs);
  EXPECT_EQ(jobs[1].controller->policy, sc::Policy::kFrFcfs);
  EXPECT_EQ(jobs[2].controller->policy, sc::Policy::kReadFirst);
  // Without a schedule the controller stage stays disengaged.
  const auto legacy = comet::driver::build_matrix(
      comet::driver::parse_args({"--device", "comet", "--workload",
                                 "gcc_like"}));
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_FALSE(legacy[0].controller.has_value());
}

TEST(SchedSweep, ThreadedMatchesSerialForEveryPolicy) {
  // Serial-vs-threaded bit-identity of every policy over hybrid-all
  // (plus flat COMET), the scheduler analogue of the hybrid sweep gate.
  const auto spec = comet::config::ExperimentBuilder()
                        .name("policies")
                        .device("comet")
                        .device("hybrid-all")
                        .workload("gcc_like")
                        .schedule({sc::Policy::kFcfs, sc::Policy::kFrFcfs,
                                   sc::Policy::kReadFirst})
                        .controller_config(sc::ControllerConfig::with_depths(
                            sc::Policy::kFcfs, 16, 16))
                        .requests({1200})
                        .build();
  const auto jobs = comet::driver::build_matrix(spec);
  ASSERT_EQ(jobs.size(), 18u);  // (1 flat + 5 hybrid) x 3 policies
  const auto serial = comet::driver::run_sweep(jobs, 1);
  const auto threaded = comet::driver::run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bit_identical(serial[i], threaded[i],
                         jobs[i].device.name + "/" +
                             serial[i].sched_policy);
    EXPECT_EQ(serial[i].sched_queue_delay_ns.mean(),
              threaded[i].sched_queue_delay_ns.mean())
        << i;
    EXPECT_EQ(serial[i].write_drains, threaded[i].write_drains) << i;
    EXPECT_EQ(serial[i].admit_stalls, threaded[i].admit_stalls) << i;
  }
}

TEST(SchedReport, JsonCarriesSchedObjectAndPercentiles) {
  const auto opt = comet::driver::parse_args(
      {"--device", "comet", "--workload", "gcc_like", "--requests", "600",
       "--schedule", "frfcfs"});
  const auto jobs = comet::driver::build_matrix(opt);
  const auto results = comet::driver::run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results);
  const std::string json = os.str();
  for (const char* field :
       {"\"sched\": {", "\"policy\": \"frfcfs\"", "\"read_queue_depth\": 32",
        "\"avg_queue_delay_ns\"", "\"avg_service_latency_ns\"",
        "\"p50_read_latency_ns\"", "\"p95_read_latency_ns\"",
        "\"p99_write_latency_ns\"", "\"write_drains\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }

  // Legacy runs serialize the scheduler group as null.
  const auto legacy_opt = comet::driver::parse_args(
      {"--device", "comet", "--workload", "gcc_like", "--requests", "600"});
  const auto legacy_jobs = comet::driver::build_matrix(legacy_opt);
  const auto legacy_results = comet::driver::run_sweep(legacy_jobs, 1);
  std::ostringstream legacy_os;
  comet::driver::write_json(legacy_os, legacy_jobs, legacy_results);
  EXPECT_NE(legacy_os.str().find("\"sched\": null"), std::string::npos);
}

TEST(SchedReport, TableShowsSchedulerBreakdown) {
  const auto opt = comet::driver::parse_args(
      {"--device", "epcm", "--workload", "lbm_like", "--requests", "600",
       "--schedule", "read-first"});
  const auto jobs = comet::driver::build_matrix(opt);
  const auto results = comet::driver::run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::print_report(os, jobs, results, /*csv=*/false);
  EXPECT_NE(os.str().find("Scheduler breakdown"), std::string::npos);
  EXPECT_NE(os.str().find("read-first"), std::string::npos);
}
