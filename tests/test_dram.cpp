#include <gtest/gtest.h>

#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"

namespace cd = comet::dram;
namespace ms = comet::memsim;

namespace {

double saturated_bw(const ms::DeviceModel& device) {
  auto profile = ms::profile_by_name("gcc_like");
  profile.avg_interarrival_ns = 0.5;
  const ms::TraceGenerator gen(profile, 11);
  const auto trace = gen.generate(20000, 128);
  return ms::MemorySystem(device).run(trace).bandwidth_gbps();
}

}  // namespace

TEST(Dram, AllModelsValidate) {
  for (const auto& model : {cd::ddr3_2d(), cd::ddr3_3d(), cd::ddr4_2d(),
                            cd::ddr4_3d(), cd::epcm_mm()}) {
    EXPECT_NO_THROW(model.validate()) << model.name;
    EXPECT_EQ(model.capacity_bytes, 8ull << 30) << model.name;
  }
}

TEST(Dram, NamesMatchPaper) {
  EXPECT_EQ(cd::ddr3_2d().name, "2D_DDR3");
  EXPECT_EQ(cd::ddr3_3d().name, "3D_DDR3");
  EXPECT_EQ(cd::ddr4_2d().name, "2D_DDR4");
  EXPECT_EQ(cd::ddr4_3d().name, "3D_DDR4");
  EXPECT_EQ(cd::epcm_mm().name, "EPCM-MM");
}

TEST(Dram, DramRefreshesButPcmDoesNot) {
  EXPECT_GT(cd::ddr3_2d().timing.refresh_interval_ps, 0u);
  EXPECT_GT(cd::ddr4_3d().timing.refresh_interval_ps, 0u);
  EXPECT_EQ(cd::epcm_mm().timing.refresh_interval_ps, 0u);
}

TEST(Dram, Ddr4FasterThanDdr3) {
  EXPECT_LT(cd::ddr4_2d().timing.read_occupancy_ps,
            cd::ddr3_2d().timing.read_occupancy_ps);
  EXPECT_LT(cd::ddr4_2d().timing.burst_ps, cd::ddr3_2d().timing.burst_ps);
}

TEST(Dram, StackingAddsChannelsAndCutsEnergy) {
  EXPECT_GT(cd::ddr3_3d().timing.channels, cd::ddr3_2d().timing.channels);
  EXPECT_LT(cd::ddr3_3d().energy.read_pj_per_bit,
            cd::ddr3_2d().energy.read_pj_per_bit);
  EXPECT_LT(cd::ddr4_3d().energy.background_power_w,
            cd::ddr4_2d().energy.background_power_w);
}

TEST(Dram, EpcmWritesSlowerThanReads) {
  const auto epcm = cd::epcm_mm();
  EXPECT_GT(epcm.timing.write_occupancy_ps,
            2 * epcm.timing.read_occupancy_ps);
  EXPECT_GT(epcm.energy.write_pj_per_bit, 5 * epcm.energy.read_pj_per_bit);
}

TEST(Dram, BandwidthOrderingMatchesPaper) {
  // Paper Fig. 9a ordering (ascending BW):
  //   2D_DDR3 < 2D_DDR4 < 3D_DDR3 < 3D_DDR4, with EPCM-MM close to the
  //   3D parts.
  const double ddr3_2d = saturated_bw(cd::ddr3_2d());
  const double ddr4_2d = saturated_bw(cd::ddr4_2d());
  const double ddr3_3d = saturated_bw(cd::ddr3_3d());
  const double ddr4_3d = saturated_bw(cd::ddr4_3d());
  const double epcm = saturated_bw(cd::epcm_mm());
  EXPECT_LT(ddr3_2d, ddr4_2d);
  EXPECT_LT(ddr4_2d, ddr3_3d);
  EXPECT_LT(ddr3_3d, ddr4_3d);
  EXPECT_GT(epcm, ddr4_2d);
  EXPECT_LT(epcm, 1.3 * ddr4_3d);
}

TEST(Dram, StackingImprovesBandwidth) {
  EXPECT_GT(saturated_bw(cd::ddr3_3d()), 1.5 * saturated_bw(cd::ddr3_2d()));
}

TEST(Dram, ThreeDEpbBeatsTwoD) {
  auto run = [](const ms::DeviceModel& d) {
    auto profile = ms::profile_by_name("gcc_like");
    profile.avg_interarrival_ns = 0.5;
    const ms::TraceGenerator gen(profile, 11);
    return ms::MemorySystem(d).run(gen.generate(20000, 128)).epb_pj_per_bit();
  };
  EXPECT_LT(run(cd::ddr3_3d()), run(cd::ddr3_2d()) / 3.0);
  EXPECT_LT(run(cd::ddr4_3d()), run(cd::ddr4_2d()) / 3.0);
}

TEST(Dram, CustomConfigPassesThrough) {
  auto config = cd::ddr3_2d_config();
  config.channels = 4;
  config.banks_per_channel = 32;
  const auto model = cd::make_dram(config, "custom");
  EXPECT_EQ(model.timing.channels, 4);
  EXPECT_EQ(model.timing.banks_per_channel, 32);
  EXPECT_EQ(model.name, "custom");
}
