#include <gtest/gtest.h>

#include "accel/dota.hpp"
#include "accel/transformer.hpp"
#include "core/comet_memory.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "photonics/losses.hpp"

namespace ca = comet::accel;
namespace cc = comet::core;
namespace cp = comet::photonics;

// -------------------------------------------------------- transformer

TEST(Transformer, DeiTParameterCounts) {
  // Literature: DeiT-T ~5.5-5.9 M params, DeiT-B ~86 M.
  const auto tiny = ca::TransformerModel::deit_tiny();
  const auto base = ca::TransformerModel::deit_base();
  EXPECT_NEAR(tiny.parameters() / 1e6, 5.5, 0.8);
  EXPECT_NEAR(base.parameters() / 1e6, 86.0, 5.0);
}

TEST(Transformer, DeiTMacCounts) {
  // Literature: ~1.3 GMACs (DeiT-T), ~17.6 GMACs (DeiT-B).
  EXPECT_NEAR(ca::TransformerModel::deit_tiny().macs_per_inference() / 1e9,
              1.3, 0.3);
  EXPECT_NEAR(ca::TransformerModel::deit_base().macs_per_inference() / 1e9,
              17.6, 2.0);
}

TEST(Transformer, TrafficDominatedByWeights) {
  for (const auto& m : {ca::TransformerModel::deit_tiny(),
                        ca::TransformerModel::deit_base()}) {
    EXPECT_GT(m.weight_traffic_bytes(), m.activation_traffic_bytes())
        << m.name;
    EXPECT_EQ(m.total_traffic_bytes(),
              m.weight_traffic_bytes() + m.activation_traffic_bytes());
  }
}

TEST(Transformer, IntensitySimilarAcrossScales) {
  // Both DeiT variants run ~100-250 MACs per streamed byte.
  const double t = ca::TransformerModel::deit_tiny().arithmetic_intensity();
  const double b = ca::TransformerModel::deit_base().arithmetic_intensity();
  EXPECT_GT(t, 50.0);
  EXPECT_LT(t, 300.0);
  EXPECT_GT(b, 50.0);
  EXPECT_LT(b, 300.0);
}

// -------------------------------------------------------------- DOTA

namespace {

ca::DotaSystem make_dota(comet::memsim::DeviceModel device, bool photonic) {
  return ca::DotaSystem(ca::DotaConfig::paper(), std::move(device), photonic);
}

}  // namespace

TEST(Dota, PhotonicMemorySkipsConversion) {
  const auto losses = cp::LossParameters::paper();
  const auto comet = make_dota(
      cc::CometMemory::device_model(cc::CometConfig::comet_4b(), losses),
      true);
  const auto ddr4 = make_dota(comet::dram::ddr4_3d(), false);
  const auto model = ca::TransformerModel::deit_base();
  EXPECT_DOUBLE_EQ(comet.evaluate(model).conversion_epb, 0.0);
  EXPECT_GT(ddr4.evaluate(model).conversion_epb, 0.0);
}

TEST(Dota, DemandGrowsWithModelSize) {
  const auto ddr4 = make_dota(comet::dram::ddr4_3d(), false);
  const auto tiny = ddr4.evaluate(ca::TransformerModel::deit_tiny());
  const auto base = ddr4.evaluate(ca::TransformerModel::deit_base());
  EXPECT_GT(base.demanded_bw_gbps, tiny.demanded_bw_gbps);
}

TEST(Dota, EffectiveBandwidthCappedByMemory) {
  const auto ddr4 = make_dota(comet::dram::ddr4_3d(), false);
  const auto r = ddr4.evaluate(ca::TransformerModel::deit_base());
  EXPECT_LE(r.effective_bw_gbps, r.achieved_bw_gbps + 1e-9);
  EXPECT_LE(r.effective_bw_gbps, r.demanded_bw_gbps + 1e-9);
}

TEST(Dota, CometStreamsFasterThanDram) {
  const auto losses = cp::LossParameters::paper();
  const auto comet = make_dota(
      cc::CometMemory::device_model(cc::CometConfig::comet_4b(), losses),
      true);
  const auto ddr4 = make_dota(comet::dram::ddr4_3d(), false);
  EXPECT_GT(comet.streaming_bandwidth_gbps(),
            10.0 * ddr4.streaming_bandwidth_gbps());
}

TEST(Dota, Fig10CometBeatsElectronicAndGapGrows) {
  // Paper Fig. 10: COMET+DOTA has 1.3x (DeiT-T) and 2.06x (DeiT-B)
  // lower EPB than 3D_DDR4+DOTA — the gap grows with model size.
  const auto losses = cp::LossParameters::paper();
  const auto comet = make_dota(
      cc::CometMemory::device_model(cc::CometConfig::comet_4b(), losses),
      true);
  const auto ddr4 = make_dota(comet::dram::ddr4_3d(), false);

  const auto tiny = ca::TransformerModel::deit_tiny();
  const auto base = ca::TransformerModel::deit_base();
  const double gain_tiny =
      ddr4.evaluate(tiny).total_epb() / comet.evaluate(tiny).total_epb();
  const double gain_base =
      ddr4.evaluate(base).total_epb() / comet.evaluate(base).total_epb();
  EXPECT_GT(gain_tiny, 1.0);
  EXPECT_LT(gain_tiny, 2.0);
  EXPECT_GT(gain_base, gain_tiny);
  EXPECT_NEAR(gain_base, 2.06, 0.6);
}

TEST(Dota, Fig10CometBeatsCosmos) {
  const auto losses = cp::LossParameters::paper();
  const auto comet = make_dota(
      cc::CometMemory::device_model(cc::CometConfig::comet_4b(), losses),
      true);
  const auto cosmos = make_dota(
      comet::cosmos::cosmos_device_model(comet::cosmos::CosmosConfig::paper(),
                                         losses),
      true);
  for (const auto& model : {ca::TransformerModel::deit_tiny(),
                            ca::TransformerModel::deit_base()}) {
    EXPECT_GT(cosmos.evaluate(model).total_epb(),
              comet.evaluate(model).total_epb())
        << model.name;
  }
}
