// Telemetry subsystem tests. Two load-bearing gates:
//
//  1. Observation must not perturb the experiment: for every registry
//     device (flat and hybrid), every controller option and run_threads
//     {1, 8}, a fully-instrumented run must reproduce the untraced
//     SimStats field for field — exact ==, no tolerances.
//  2. Recording must be deterministic: serial and sharded replays of
//     the same job must produce byte-identical telemetry (every lane's
//     events, marks, heatmap and epoch accumulators), so a trace is a
//     stable artifact whatever thread count produced it.
//
// Plus the reconciliation invariants (timeline sums == run totals),
// the truncation-cap mechanics, and TelemetrySpec validation.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/device_spec.hpp"
#include "driver/registry.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace ms = comet::memsim;
namespace sc = comet::sched;
namespace cu = comet::util;
namespace dr = comet::driver;
namespace tl = comet::telemetry;

namespace {

/// The shared demand trace: mixed profile, so bursts, Zipf-hot jumps
/// and both ops exercise queues, drains and the epoch sampler.
const std::vector<ms::Request>& shared_trace() {
  static const std::vector<ms::Request> trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 7).generate(2500,
                                                                      64);
  return trace;
}

/// No controller, plus every policy with bounded queues (depth 8) so
/// admit stalls and write-drain hysteresis actually fire.
std::vector<std::optional<sc::ControllerConfig>> controller_axis() {
  std::vector<std::optional<sc::ControllerConfig>> axis;
  axis.push_back(std::nullopt);
  for (const auto policy :
       {sc::Policy::kFcfs, sc::Policy::kFrFcfs, sc::Policy::kReadFirst}) {
    axis.push_back(sc::ControllerConfig::with_depths(policy, 8, 8));
  }
  return axis;
}

std::string axis_name(const std::optional<sc::ControllerConfig>& controller) {
  return controller ? sc::policy_name(controller->policy) : "none";
}

/// A spec that exercises both recording modes: full request tracing
/// and a 5 µs epoch sampler (the shared trace spans tens of µs, so the
/// timeline gets multiple epochs).
tl::TelemetrySpec full_spec() {
  tl::TelemetrySpec spec;
  spec.trace_path = "unused.json";  // Only tracing() matters in-process.
  spec.trace_limit = 0;             // Unlimited.
  spec.metrics_interval_ps = 5'000'000;
  return spec;
}

/// Runs one job with an attached collector (null = untraced).
ms::SimStats run_device(const dr::DeviceSpec& spec,
                        const std::optional<sc::ControllerConfig>& controller,
                        int threads, tl::Collector* collector) {
  const auto engine = spec.make_engine(controller, threads);
  if (collector != nullptr) engine->attach_telemetry(collector);
  return engine->run(shared_trace(), "gcc_like");
}

/// Exact comparison of every SimStats field (the test_sharded gate,
/// applied traced-vs-untraced).
void expect_identical(const ms::SimStats& a, const ms::SimStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << label;
  EXPECT_EQ(a.span_ps, b.span_ps) << label;
  const auto same_dist = [&](const cu::RunningStats& x,
                             const cu::RunningStats& y, const char* which) {
    EXPECT_EQ(x.count(), y.count()) << label << " " << which;
    EXPECT_EQ(x.mean(), y.mean()) << label << " " << which;
    EXPECT_EQ(x.stddev(), y.stddev()) << label << " " << which;
    EXPECT_EQ(x.min(), y.min()) << label << " " << which;
    EXPECT_EQ(x.max(), y.max()) << label << " " << which;
    EXPECT_EQ(x.sum(), y.sum()) << label << " " << which;
    EXPECT_EQ(x.p50(), y.p50()) << label << " " << which;
    EXPECT_EQ(x.p95(), y.p95()) << label << " " << which;
    EXPECT_EQ(x.p99(), y.p99()) << label << " " << which;
  };
  same_dist(a.read_latency_ns, b.read_latency_ns, "read");
  same_dist(a.write_latency_ns, b.write_latency_ns, "write");
  same_dist(a.queue_delay_ns, b.queue_delay_ns, "queue");
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << label;
  EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << label;
  EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << label;
  EXPECT_EQ(a.hybrid, b.hybrid) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.cache_fills, b.cache_fills) << label;
  EXPECT_EQ(a.writebacks, b.writebacks) << label;
  EXPECT_EQ(a.scheduled, b.scheduled) << label;
  same_dist(a.sched_queue_delay_ns, b.sched_queue_delay_ns, "sched-queue");
  same_dist(a.service_latency_ns, b.service_latency_ns, "service");
  same_dist(a.read_queue_occupancy, b.read_queue_occupancy, "read-occ");
  same_dist(a.write_queue_occupancy, b.write_queue_occupancy, "write-occ");
  EXPECT_EQ(a.write_drains, b.write_drains) << label;
  EXPECT_EQ(a.drained_writes, b.drained_writes) << label;
  EXPECT_EQ(a.drain_stalls, b.drain_stalls) << label;
  EXPECT_EQ(a.admit_stalls, b.admit_stalls) << label;
}

void expect_same_moments(const cu::RunningStats& x, const cu::RunningStats& y,
                         const std::string& label) {
  EXPECT_EQ(x.count(), y.count()) << label;
  EXPECT_EQ(x.mean(), y.mean()) << label;
  EXPECT_EQ(x.sum(), y.sum()) << label;
  EXPECT_EQ(x.min(), y.min()) << label;
  EXPECT_EQ(x.max(), y.max()) << label;
  EXPECT_EQ(x.p50(), y.p50()) << label;
  EXPECT_EQ(x.p95(), y.p95()) << label;
  EXPECT_EQ(x.p99(), y.p99()) << label;
}

/// Byte-for-byte telemetry comparison: every stage, lane, event, mark,
/// heatmap cell and epoch accumulator.
void expect_same_telemetry(const tl::Collector& a, const tl::Collector& b,
                           const std::string& label) {
  ASSERT_EQ(a.stages().size(), b.stages().size()) << label;
  for (std::size_t s = 0; s < a.stages().size(); ++s) {
    const tl::Recorder& ra = *a.stages()[s];
    const tl::Recorder& rb = *b.stages()[s];
    const std::string at = label + "/stage " + ra.stage();
    ASSERT_EQ(ra.stage(), rb.stage()) << at;
    ASSERT_EQ(ra.channels(), rb.channels()) << at;
    ASSERT_EQ(ra.banks(), rb.banks()) << at;
    for (int c = 0; c < ra.channels(); ++c) {
      const tl::LaneTelemetry& la = ra.lane(c);
      const tl::LaneTelemetry& lb = rb.lane(c);
      const std::string lane = at + "/ch" + std::to_string(c);
      EXPECT_EQ(la.bank_requests, lb.bank_requests) << lane;
      EXPECT_EQ(la.dropped_events, lb.dropped_events) << lane;
      EXPECT_EQ(la.dropped_marks, lb.dropped_marks) << lane;
      ASSERT_EQ(la.events.size(), lb.events.size()) << lane;
      for (std::size_t i = 0; i < la.events.size(); ++i) {
        const tl::RequestEvent& ea = la.events[i];
        const tl::RequestEvent& eb = lb.events[i];
        const std::string ev = lane + "/event " + std::to_string(i);
        EXPECT_EQ(ea.id, eb.id) << ev;
        EXPECT_EQ(ea.arrival_ps, eb.arrival_ps) << ev;
        EXPECT_EQ(ea.issue_ps, eb.issue_ps) << ev;
        EXPECT_EQ(ea.start_ps, eb.start_ps) << ev;
        EXPECT_EQ(ea.completion_ps, eb.completion_ps) << ev;
        EXPECT_EQ(ea.bank_busy_until_ps, eb.bank_busy_until_ps) << ev;
        EXPECT_EQ(ea.size_bytes, eb.size_bytes) << ev;
        EXPECT_EQ(ea.bank, eb.bank) << ev;
        EXPECT_EQ(ea.op, eb.op) << ev;
      }
      ASSERT_EQ(la.marks.size(), lb.marks.size()) << lane;
      for (std::size_t i = 0; i < la.marks.size(); ++i) {
        EXPECT_EQ(la.marks[i].kind, lb.marks[i].kind) << lane << " mark " << i;
        EXPECT_EQ(la.marks[i].at_ps, lb.marks[i].at_ps) << lane << " mark "
                                                        << i;
      }
      ASSERT_EQ(la.epochs.size(), lb.epochs.size()) << lane;
      auto ita = la.epochs.begin();
      auto itb = lb.epochs.begin();
      for (; ita != la.epochs.end(); ++ita, ++itb) {
        const std::string ep = lane + "/epoch " + std::to_string(ita->first);
        EXPECT_EQ(ita->first, itb->first) << ep;
        EXPECT_EQ(ita->second.reads, itb->second.reads) << ep;
        EXPECT_EQ(ita->second.writes, itb->second.writes) << ep;
        EXPECT_EQ(ita->second.bytes, itb->second.bytes) << ep;
        EXPECT_EQ(ita->second.bank_busy_ns, itb->second.bank_busy_ns) << ep;
        expect_same_moments(ita->second.latency_ns, itb->second.latency_ns,
                            ep + " latency");
        expect_same_moments(ita->second.read_queue_occupancy,
                            itb->second.read_queue_occupancy, ep + " rd-occ");
        expect_same_moments(ita->second.write_queue_occupancy,
                            itb->second.write_queue_occupancy, ep + " wr-occ");
        EXPECT_EQ(ita->second.write_drains, itb->second.write_drains) << ep;
        EXPECT_EQ(ita->second.drained_writes, itb->second.drained_writes)
            << ep;
        EXPECT_EQ(ita->second.admit_stalls, itb->second.admit_stalls) << ep;
      }
    }
  }
}

std::vector<std::string> all_device_tokens() {
  std::vector<std::string> tokens = dr::known_devices();
  for (const auto& token : dr::known_hybrid_devices()) tokens.push_back(token);
  return tokens;
}

}  // namespace

// ------------------------------------------------------ spec contract

TEST(TelemetrySpec, CsvWithoutIntervalThrows) {
  tl::TelemetrySpec spec;
  spec.metrics_csv = "out.csv";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.metrics_interval_ps = 1'000'000;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_NO_THROW(tl::TelemetrySpec{}.validate());
}

TEST(TelemetrySpec, EnabledFollowsTracingAndSampling) {
  tl::TelemetrySpec spec;
  EXPECT_FALSE(spec.enabled());
  spec.trace_path = "t.json";
  EXPECT_TRUE(spec.tracing());
  EXPECT_TRUE(spec.enabled());
  spec.trace_path.clear();
  spec.metrics_interval_ps = 5;
  EXPECT_TRUE(spec.sampling());
  EXPECT_TRUE(spec.enabled());
}

// ------------------------------------- observation does not perturb

TEST(TelemetryBitIdentity, TracedRunMatchesUntracedEveryDeviceEveryPolicy) {
  for (const auto& token : all_device_tokens()) {
    const dr::DeviceSpec spec = dr::make_device_spec(token);
    for (const auto& controller : controller_axis()) {
      for (const int threads : {1, 8}) {
        const std::string label = token + "/" + axis_name(controller) + "/t" +
                                  std::to_string(threads);
        const ms::SimStats plain =
            run_device(spec, controller, threads, nullptr);
        tl::Collector collector(full_spec());
        const ms::SimStats traced =
            run_device(spec, controller, threads, &collector);
        expect_identical(plain, traced, label);
        EXPECT_GT(collector.recorded_events(), 0u) << label;
      }
    }
  }
}

// ------------------------------------------ recording is deterministic

TEST(TelemetryBitIdentity, SerialAndShardedRunsRecordIdenticalTelemetry) {
  for (const auto& token : all_device_tokens()) {
    const dr::DeviceSpec spec = dr::make_device_spec(token);
    for (const auto& controller : controller_axis()) {
      tl::Collector serial(full_spec());
      run_device(spec, controller, 1, &serial);
      for (const int threads : {2, 8}) {
        tl::Collector sharded(full_spec());
        run_device(spec, controller, threads, &sharded);
        expect_same_telemetry(serial, sharded,
                              token + "/" + axis_name(controller) + "/t" +
                                  std::to_string(threads));
      }
    }
  }
}

// ------------------------------------------------------ reconciliation

TEST(TelemetryTimeline, EpochSumsReconcileWithSimStats) {
  // Flat devices only: their single stage sees every request exactly
  // once, so the timeline's totals must equal the run's. (A hybrid
  // run's stages see cache traffic and backend traffic respectively —
  // a different, per-stage invariant.)
  for (const auto& token : dr::known_devices()) {
    const dr::DeviceSpec spec = dr::make_device_spec(token);
    for (const auto& controller : controller_axis()) {
      const std::string label = token + "/" + axis_name(controller);
      tl::Collector collector(full_spec());
      const ms::SimStats stats = run_device(spec, controller, 1, &collector);
      const auto timeline = collector.timeline();
      ASSERT_FALSE(timeline.empty()) << label;
      std::uint64_t reads = 0, writes = 0, bytes = 0;
      std::uint64_t drains = 0, drained = 0, stalls = 0;
      for (const auto& point : timeline) {
        reads += point.reads;
        writes += point.writes;
        bytes += point.bytes;
        drains += point.write_drains;
        drained += point.drained_writes;
        stalls += point.admit_stalls;
        std::uint64_t channel_sum = 0;
        ASSERT_EQ(point.channel_requests.size(),
                  static_cast<std::size_t>(collector.total_channels()))
            << label;
        for (const auto count : point.channel_requests) channel_sum += count;
        EXPECT_EQ(channel_sum, point.reads + point.writes) << label;
      }
      EXPECT_EQ(reads, stats.reads) << label;
      EXPECT_EQ(writes, stats.writes) << label;
      EXPECT_EQ(bytes, stats.bytes_transferred) << label;
      EXPECT_EQ(drains, stats.write_drains) << label;
      EXPECT_EQ(drained, stats.drained_writes) << label;
      EXPECT_EQ(stalls, stats.admit_stalls) << label;
    }
  }
}

TEST(TelemetryTimeline, BoundedReadFirstRecordsDrainActivity) {
  // Read-first with an aggressive low watermark pair drains on this
  // trace; the timeline must carry that activity (not just zeros).
  auto config = sc::ControllerConfig::with_depths(sc::Policy::kReadFirst, 8, 8);
  config.drain_high_watermark = 2;
  config.drain_low_watermark = 0;
  tl::Collector collector(full_spec());
  const ms::SimStats stats =
      run_device(dr::make_device_spec("comet"), config, 1, &collector);
  ASSERT_GT(stats.write_drains, 0u);
  std::uint64_t drains = 0;
  for (const auto& point : collector.timeline()) drains += point.write_drains;
  EXPECT_EQ(drains, stats.write_drains);
}

TEST(TelemetryTimeline, EmptyWithoutSampling) {
  tl::TelemetrySpec spec;
  spec.trace_path = "t.json";  // Tracing only.
  tl::Collector collector(spec);
  run_device(dr::make_device_spec("comet"), std::nullopt, 1, &collector);
  EXPECT_GT(collector.recorded_events(), 0u);
  EXPECT_TRUE(collector.timeline().empty());
}

TEST(TelemetryTimeline, HybridRunsRecordPerTierStages) {
  const std::string token = dr::known_hybrid_devices().front();
  tl::Collector collector(full_spec());
  run_device(dr::make_device_spec(token), std::nullopt, 1, &collector);
  ASSERT_EQ(collector.stages().size(), 2u);
  EXPECT_EQ(collector.stages()[0]->stage(), "dram");
  EXPECT_EQ(collector.stages()[1]->stage(), "backend");
  EXPECT_GT(collector.stages()[0]->recorded_events(), 0u);
  const auto timeline = collector.timeline();
  ASSERT_FALSE(timeline.empty());
  for (const auto& point : timeline) {
    EXPECT_EQ(point.channel_requests.size(),
              static_cast<std::size_t>(collector.total_channels()));
  }
}

// --------------------------------------------------------- truncation

TEST(TelemetryTruncation, EventCapsAreHonoredAndDropsCounted) {
  tl::TelemetrySpec spec;
  spec.trace_path = "t.json";
  spec.trace_limit = 64;
  tl::Collector collector(spec);
  const ms::SimStats stats = run_device(dr::make_device_spec("comet"),
                                        std::nullopt, 1, &collector);
  EXPECT_LE(collector.recorded_events(), 64u);
  EXPECT_GT(collector.dropped_events(), 0u);
  EXPECT_TRUE(collector.truncated());
  // Nothing is lost from the accounting: stored + dropped covers every
  // request the run served, and the heatmap counts them all regardless
  // of the trace cap.
  std::uint64_t stored = 0, dropped = 0, heatmap = 0;
  for (const auto& stage : collector.stages()) {
    for (int c = 0; c < stage->channels(); ++c) {
      const tl::LaneTelemetry& lane = stage->lane(c);
      EXPECT_LE(lane.events.size(), lane.event_cap);
      stored += lane.events.size();
      dropped += lane.dropped_events;
      for (const auto count : lane.bank_requests) heatmap += count;
    }
  }
  EXPECT_EQ(stored + dropped, stats.reads + stats.writes);
  EXPECT_EQ(heatmap, stats.reads + stats.writes);
}

TEST(TelemetryTruncation, LaneCapsSumToStageBudget) {
  tl::Collector collector(full_spec());
  const tl::Recorder* recorder = collector.add_stage("", 3, 4, 100);
  std::uint64_t total = 0;
  for (int c = 0; c < recorder->channels(); ++c) {
    total += recorder->lane(c).event_cap;
  }
  EXPECT_EQ(total, 100u);
}

TEST(TelemetryTruncation, ZeroLimitMeansUnlimited) {
  tl::TelemetrySpec spec;
  spec.trace_path = "t.json";
  spec.trace_limit = 0;
  tl::Collector collector(spec);
  const ms::SimStats stats = run_device(dr::make_device_spec("comet"),
                                        std::nullopt, 1, &collector);
  EXPECT_EQ(collector.recorded_events(), stats.reads + stats.writes);
  EXPECT_FALSE(collector.truncated());
}

// --------------------------------------------------- recorder contract

TEST(TelemetryRecorder, RejectsNonPositiveGeometry) {
  tl::Collector collector(full_spec());
  EXPECT_THROW(collector.add_stage("", 0, 4, 0), std::invalid_argument);
  EXPECT_THROW(collector.add_stage("", 4, 0, 0), std::invalid_argument);
}

TEST(TelemetryRecorder, MarksBinIntoEpochCounters) {
  tl::TelemetrySpec spec;
  spec.metrics_interval_ps = 1'000;
  tl::Collector collector(spec);
  tl::Recorder* recorder = collector.add_stage("", 1, 2, 0);
  recorder->record_mark(0, tl::MarkKind::kAdmitStall, 500);
  recorder->record_mark(0, tl::MarkKind::kDrainBegin, 1'500);
  recorder->record_mark(0, tl::MarkKind::kDrainEnd, 1'700);
  recorder->record_drained_write(0, 1'600);
  const auto timeline = collector.timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].epoch, 0u);
  EXPECT_EQ(timeline[0].admit_stalls, 1u);
  EXPECT_EQ(timeline[1].epoch, 1u);
  EXPECT_EQ(timeline[1].write_drains, 1u);
  EXPECT_EQ(timeline[1].drained_writes, 1u);
}
