// Config-layer tests: the TOML-subset parser (values, sections, arrays
// of tables, line-numbered diagnostics), two-way device/workload
// serialization (every registry device round-trips through
// --dump-config-equivalent API with identical sweep results), and the
// declarative ExperimentSpec/ExperimentBuilder matrix expansion.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/experiment.hpp"
#include "config/serialize.hpp"
#include "config/toml.hpp"
#include "driver/registry.hpp"
#include "driver/sweep.hpp"

namespace {

using comet::config::DeviceSpec;
using comet::config::ExperimentBuilder;
using comet::config::parse_device;
using comet::config::parse_workload;
using comet::driver::make_device_spec;
using comet::driver::registry_resolver;
namespace toml = comet::config::toml;

// --- Parser --------------------------------------------------------------

TEST(TomlParser, ScalarsSectionsAndArrays) {
  const auto doc = toml::parse_string(
      "top = 1\n"
      "# a comment\n"
      "[section]\n"
      "text = \"hi # not a comment\"  # trailing comment\n"
      "flag = true\n"
      "ratio = 2.5\n"
      "negative = -7\n"
      "big = 68_719_476_736\n"
      "list = [1, 2, 3]\n"
      "names = [\"a\", \"b\",]\n"
      "[section.nested]\n"
      "depth = 2\n",
      "test");
  const auto& root = doc.root;
  EXPECT_EQ(root.values.at("top").integer, 1);
  const auto& section = root.children.at("section");
  EXPECT_EQ(section.values.at("text").str, "hi # not a comment");
  EXPECT_TRUE(section.values.at("flag").boolean);
  EXPECT_DOUBLE_EQ(section.values.at("ratio").number, 2.5);
  EXPECT_EQ(section.values.at("negative").integer, -7);
  EXPECT_EQ(section.values.at("big").integer, 68719476736);
  EXPECT_EQ(section.values.at("list").array.size(), 3u);
  EXPECT_EQ(section.values.at("names").array[1].str, "b");
  EXPECT_EQ(section.children.at("nested").values.at("depth").integer, 2);
  // Line numbers are recorded for diagnostics.
  EXPECT_EQ(section.values.at("flag").line, 5u);
  EXPECT_EQ(section.line, 3u);
}

TEST(TomlParser, ArrayOfTablesNestsUnderLastElement) {
  const auto doc = toml::parse_string(
      "[[device]]\n"
      "name = \"first\"\n"
      "[device.timing]\n"
      "channels = 4\n"
      "[[device]]\n"
      "name = \"second\"\n"
      "[device.timing]\n"
      "channels = 8\n",
      "test");
  const auto& devices = doc.root.arrays.at("device");
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_EQ(devices[0].values.at("name").str, "first");
  EXPECT_EQ(devices[0].children.at("timing").values.at("channels").integer, 4);
  EXPECT_EQ(devices[1].children.at("timing").values.at("channels").integer, 8);
}

TEST(TomlParser, DiagnosticsCarrySourceAndLine) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment,
                               std::uint64_t line) {
    try {
      toml::parse_string(text, "spec.toml");
      FAIL() << "expected ParseError for: " << text;
    } catch (const toml::ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
      EXPECT_NE(std::string(e.what()).find("spec.toml:" +
                                           std::to_string(line)),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("a = 1\na = 2\n", "duplicate key", 2);
  expect_error("x = \"unterminated\n", "unterminated string", 1);
  expect_error("\n[bad\n", "malformed section header", 2);
  expect_error("v = what?\n", "unrecognized value", 1);
  expect_error("v = {a = 1}\n", "inline tables", 1);
  expect_error("v = [1, 2\n", "unterminated array", 1);
  expect_error("just words\n", "expected 'key = value'", 1);
  expect_error("[s]\n[s]\n", "duplicate section", 2);
  expect_error("[s]\nk = 1\n[[s]]\n", "conflicts", 3);
  expect_error("a.b = 1\n", "dotted/quoted keys", 1);
}

// --- Device serialization round-trips ------------------------------------

/// Runs one small deterministic job on a spec.
comet::memsim::SimStats probe(const DeviceSpec& spec) {
  comet::driver::SweepJob job;
  job.device = spec;
  job.profile = comet::memsim::profile_by_name("gcc_like");
  job.requests = 600;
  job.seed = 9;
  job.line_bytes = 128;
  return comet::driver::run_job(job);
}

void expect_same_stats(const comet::memsim::SimStats& a,
                       const comet::memsim::SimStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << label;
  EXPECT_EQ(a.span_ps, b.span_ps) << label;
  EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << label;
  EXPECT_EQ(a.write_latency_ns.mean(), b.write_latency_ns.mean()) << label;
  EXPECT_EQ(a.queue_delay_ns.mean(), b.queue_delay_ns.mean()) << label;
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << label;
  EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.writebacks, b.writebacks) << label;
  EXPECT_EQ(a.dram_tier_energy_pj, b.dram_tier_energy_pj) << label;
  EXPECT_EQ(a.backend_tier_energy_pj, b.backend_tier_energy_pj) << label;
}

TEST(DeviceSerialization, EveryRegistryDeviceRoundTrips) {
  // The --dump-config invariant: serialize → re-parse (with NO registry
  // resolver, so the dump must be self-contained) → identical structs
  // and bit-identical sweep results.
  std::vector<std::string> tokens = comet::driver::known_devices();
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    tokens.push_back(token);
  }
  for (const auto& token : tokens) {
    const DeviceSpec original = make_device_spec(token);
    const std::string text = comet::config::device_spec_to_toml(original);
    const auto doc = toml::parse_string(text, token + ".toml");
    const DeviceSpec reparsed =
        parse_device(doc.root.children.at("device"), doc.source, nullptr);

    EXPECT_EQ(reparsed.name, original.name) << token;
    EXPECT_EQ(reparsed.is_hybrid(), original.is_hybrid()) << token;
    EXPECT_EQ(reparsed.channels(), original.channels()) << token;
    if (original.is_hybrid()) {
      EXPECT_EQ(reparsed.tiered->cache.capacity_bytes,
                original.tiered->cache.capacity_bytes)
          << token;
      EXPECT_EQ(reparsed.tiered->cache.ways, original.tiered->cache.ways)
          << token;
      EXPECT_EQ(reparsed.tiered->cache.write_allocate,
                original.tiered->cache.write_allocate)
          << token;
      EXPECT_EQ(reparsed.tiered->dram.energy.background_power_w,
                original.tiered->dram.energy.background_power_w)
          << token;
    } else {
      EXPECT_EQ(reparsed.flat->capacity_bytes, original.flat->capacity_bytes)
          << token;
      EXPECT_EQ(reparsed.flat->energy.read_pj_per_bit,
                original.flat->energy.read_pj_per_bit)
          << token;
    }
    expect_same_stats(probe(original), probe(reparsed), token);
  }
}

TEST(DeviceSerialization, UnknownKeyNamesLineAndSection) {
  const std::string text =
      "[device]\n"
      "name = \"x\"\n"
      "capacity_bytes = 1073741824\n"
      "[device.timing]\n"
      "chanels = 4\n";  // Typo.
  const auto doc = toml::parse_string(text, "bad.toml");
  try {
    parse_device(doc.root.children.at("device"), doc.source, nullptr);
    FAIL();
  } catch (const toml::ParseError& e) {
    EXPECT_EQ(e.line(), 5u) << e.what();
    EXPECT_NE(std::string(e.what()).find("unknown key 'chanels'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[device].timing"),
              std::string::npos)
        << e.what();
  }
}

TEST(DeviceSerialization, BadTypeAndOutOfRangeDiagnostics) {
  const auto expect_device_error = [](const std::string& body,
                                      const std::string& fragment,
                                      std::uint64_t line) {
    const auto doc = toml::parse_string(body, "bad.toml");
    try {
      parse_device(doc.root.children.at("device"), doc.source,
                   registry_resolver());
      FAIL() << "expected error containing: " << fragment;
    } catch (const toml::ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_device_error(
      "[device]\nbase = \"comet\"\n[device.timing]\nchannels = \"four\"\n",
      "'channels' expects integer, got string", 4);
  expect_device_error(
      "[device]\nbase = \"comet\"\n[device.timing]\nchannels = 0\n",
      "'channels' must be between 1 and", 4);
  expect_device_error("[device]\nbase = \"sram\"\n", "unknown device 'sram'",
                      2);
  expect_device_error("[device]\ncapacity_bytes = 1024\n",
                      "'name' is required", 1);
  expect_device_error(
      "[device]\nbase = \"comet\"\n[device.cache]\npolicy = \"lru\"\n",
      "unknown cache policy 'lru'", 4);
  expect_device_error(
      "[device]\nname = \"h\"\nkind = \"flat\"\n[device.cache]\n"
      "capacity_mb = 64\n",
      "contradicts", 3);
  // Validation failures are re-anchored to the document too.
  expect_device_error(
      "[device]\nbase = \"comet\"\n[device.timing]\nline_bytes = 96\n",
      "line size must be 2^k", 1);
}

TEST(DeviceSerialization, FlatBasePromotesToHybrid) {
  // base = "comet" + [cache] is exactly the registry's own hybrid-comet
  // expressed by a user: the two must be indistinguishable.
  const std::string text =
      "[device]\n"
      "name = \"hybrid-comet\"\n"
      "base = \"comet\"\n"
      "[device.cache]\n"
      "capacity_mb = 64\n";
  const auto doc = toml::parse_string(text, "user.toml");
  const DeviceSpec user =
      parse_device(doc.root.children.at("device"), doc.source,
                   registry_resolver());
  ASSERT_TRUE(user.is_hybrid());
  expect_same_stats(probe(make_device_spec("hybrid-comet")), probe(user),
                    "promotion");
}

TEST(DeviceSerialization, HybridBaseOverridesRebuildDramTier) {
  const std::string text =
      "[device]\n"
      "name = \"big-cache\"\n"
      "base = \"hybrid-comet\"\n"
      "[device.cache]\n"
      "capacity_mb = 128\n";
  const auto doc = toml::parse_string(text, "user.toml");
  const DeviceSpec spec = parse_device(doc.root.children.at("device"),
                                       doc.source, registry_resolver());
  ASSERT_TRUE(spec.is_hybrid());
  EXPECT_EQ(spec.name, "big-cache");
  EXPECT_EQ(spec.tiered->cache.capacity_bytes, 128ull << 20);
  // The DRAM tier is re-derived from the new capacity.
  EXPECT_EQ(spec.tiered->dram.capacity_bytes, 128ull << 20);
  // Backend fields on a hybrid must go under [..backend].
  const std::string ambiguous =
      "[device]\nbase = \"hybrid-comet\"\n[device.timing]\nchannels = 4\n";
  const auto bad = toml::parse_string(ambiguous, "user.toml");
  EXPECT_THROW(parse_device(bad.root.children.at("device"), bad.source,
                            registry_resolver()),
               toml::ParseError);
}

TEST(DeviceSerialization, BackendSectionOverridesBackendModel) {
  const std::string text =
      "[device]\n"
      "name = \"custom\"\n"
      "base = \"hybrid-comet\"\n"
      "[device.backend]\n"
      "[device.backend.timing]\n"
      "channels = 32\n";
  const auto doc = toml::parse_string(text, "user.toml");
  const DeviceSpec spec = parse_device(doc.root.children.at("device"),
                                       doc.source, registry_resolver());
  EXPECT_EQ(spec.channels(), 32);
  // The cache geometry is untouched.
  EXPECT_EQ(spec.tiered->cache.capacity_bytes,
            make_device_spec("hybrid-comet").tiered->cache.capacity_bytes);
}

TEST(WorkloadSerialization, EveryProfileRoundTrips) {
  for (const auto& profile : comet::memsim::spec_like_profiles()) {
    const std::string text = comet::config::workload_to_toml(profile);
    const auto doc = toml::parse_string(text, profile.name + ".toml");
    const auto reparsed =
        parse_workload(doc.root.children.at("workload"), doc.source);
    EXPECT_EQ(reparsed.name, profile.name);
    EXPECT_EQ(reparsed.pattern, profile.pattern) << profile.name;
    EXPECT_EQ(reparsed.read_fraction, profile.read_fraction) << profile.name;
    EXPECT_EQ(reparsed.locality, profile.locality) << profile.name;
    EXPECT_EQ(reparsed.zipf_exponent, profile.zipf_exponent) << profile.name;
    EXPECT_EQ(reparsed.working_set_bytes, profile.working_set_bytes)
        << profile.name;
    EXPECT_EQ(reparsed.avg_interarrival_ns, profile.avg_interarrival_ns)
        << profile.name;
    EXPECT_EQ(reparsed.stride_bytes, profile.stride_bytes) << profile.name;
  }
}

TEST(WorkloadSerialization, RangeAndPatternDiagnostics) {
  const auto expect_workload_error = [](const std::string& body,
                                        const std::string& fragment) {
    const auto doc = toml::parse_string(body, "w.toml");
    try {
      parse_workload(doc.root.children.at("workload"), doc.source);
      FAIL() << "expected error containing: " << fragment;
    } catch (const toml::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_workload_error("[workload]\npattern = \"zigzag\"\n",
                        "'name' is required");
  expect_workload_error(
      "[workload]\nname = \"w\"\npattern = \"zigzag\"\n",
      "unknown pattern 'zigzag'");
  expect_workload_error(
      "[workload]\nname = \"w\"\nread_fraction = 1.5\n",
      "'read_fraction' must be between 0 and 1");
}

// --- Experiment API ------------------------------------------------------

TEST(ExperimentApi, BuilderValidates) {
  EXPECT_THROW(ExperimentBuilder().build(), std::invalid_argument);
  EXPECT_THROW(ExperimentBuilder().device("comet").build(),
               std::invalid_argument);
  EXPECT_THROW(ExperimentBuilder()
                   .device("comet")
                   .workload("gcc_like")
                   .trace("x.trace")
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(ExperimentBuilder()
                   .device("comet")
                   .workload("gcc_like")
                   .requests({})
                   .build(),
               std::invalid_argument);
  const auto spec = ExperimentBuilder()
                        .name("ok")
                        .device("comet")
                        .workload("gcc_like")
                        .channels({4, 8})
                        .build();
  EXPECT_EQ(spec.name, "ok");
  EXPECT_EQ(spec.channels.size(), 2u);
}

TEST(ExperimentApi, AxesMultiplyTheMatrix) {
  const auto spec = ExperimentBuilder()
                        .device("comet")
                        .device("epcm")
                        .workload("gcc_like")
                        .channels({0, 4})
                        .requests({500, 1000})
                        .seeds({1, 2, 3})
                        .build();
  const auto jobs = comet::driver::build_matrix(spec);
  EXPECT_EQ(jobs.size(), 2u * 2u * 1u * 2u * 3u);
  // Nesting order: devices × channels × workloads × requests × seeds.
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[1].seed, 2u);
  EXPECT_EQ(jobs[3].requests, 1000u);
  EXPECT_EQ(jobs[0].device.name, jobs[11].device.name);
  EXPECT_NE(jobs[0].device.name, jobs[12].device.name);
  // channels = 0 keeps the device topology; 4 overrides it.
  EXPECT_EQ(jobs[6].device.channels(), 4);
}

TEST(ExperimentApi, ParseExperimentDocument) {
  const std::string text =
      "[experiment]\n"
      "name = \"demo\"\n"
      "devices = [\"comet\", \"hybrid-comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "requests = 400\n"
      "seed = [7, 8]\n"
      "\n"
      "[[device]]\n"
      "name = \"comet-16ch\"\n"
      "base = \"comet\"\n"
      "[device.timing]\n"
      "channels = 16\n"
      "\n"
      "[[workload]]\n"
      "name = \"scan\"\n"
      "pattern = \"streaming\"\n"
      "read_fraction = 0.5\n";
  const auto spec = comet::config::parse_experiment(
      toml::parse_string(text, "demo.toml"), registry_resolver());
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.source, "demo.toml");
  ASSERT_EQ(spec.device_tokens.size(), 2u);
  ASSERT_EQ(spec.devices.size(), 1u);
  EXPECT_EQ(spec.devices[0].channels(), 16);
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].name, "scan");

  const auto jobs = comet::driver::build_matrix(spec);
  // (2 tokens + 1 inline) devices × (1 named + 1 inline) workloads × 2
  // seeds, tokens/names expanding before inline definitions.
  EXPECT_EQ(jobs.size(), 3u * 2u * 2u);
  EXPECT_EQ(jobs[0].device.name, make_device_spec("comet").name);
  EXPECT_EQ(jobs.back().device.name, "comet-16ch");
  EXPECT_EQ(jobs.back().profile.name, "scan");
  EXPECT_EQ(jobs[0].experiment, "demo");
  EXPECT_EQ(jobs[0].config_file, "demo.toml");
}

TEST(ExperimentApi, UnknownTopLevelSectionRejected) {
  EXPECT_THROW(comet::config::parse_experiment(
                   toml::parse_string("[expirement]\nname = \"x\"\n", "t"),
                   nullptr),
               toml::ParseError);
}

TEST(ExperimentApi, ConfigMatrixMatchesCliFlagMatrix) {
  // Acceptance criterion: a config-file experiment reproduces the exact
  // SimStats of the equivalent CLI-flag invocation.
  const auto cli_options = comet::driver::parse_args(
      {"--device", "hybrid-comet", "--workload", "milc_like", "--requests",
       "700", "--seed", "5", "--channels", "8"});
  const auto cli_jobs = comet::driver::build_matrix(cli_options);

  const std::string text =
      "[experiment]\n"
      "devices = [\"hybrid-comet\"]\n"
      "workloads = [\"milc_like\"]\n"
      "requests = 700\n"
      "seed = 5\n"
      "channels = 8\n";
  const auto cfg_jobs = comet::driver::build_matrix(
      comet::config::parse_experiment(toml::parse_string(text, "cli.toml"),
                                      registry_resolver()));
  ASSERT_EQ(cli_jobs.size(), cfg_jobs.size());
  const auto cli_results = comet::driver::run_sweep(cli_jobs, 1);
  const auto cfg_results = comet::driver::run_sweep(cfg_jobs, 1);
  for (std::size_t i = 0; i < cli_results.size(); ++i) {
    expect_same_stats(cli_results[i], cfg_results[i], "cli-vs-config");
  }
}

TEST(ExperimentApi, ResolvedExperimentRoundTripsThroughToml) {
  // The --dump-config → --config loop in-process: resolve an experiment
  // to inline definitions, serialize, re-parse WITHOUT a registry, and
  // compare sweep results bit-exactly.
  const auto options = comet::driver::parse_args(
      {"--device", "hybrid-comet-small", "--workload", "lbm_like",
       "--requests", "500"});
  const auto resolved = comet::driver::resolve_experiment(
      comet::driver::experiment_from_options(options));
  EXPECT_TRUE(resolved.device_tokens.empty());
  EXPECT_TRUE(resolved.workload_names.empty());

  const std::string text = comet::config::experiment_to_toml(resolved);
  const auto reparsed = comet::config::parse_experiment(
      toml::parse_string(text, "dump.toml"), nullptr);
  const auto jobs_a = comet::driver::build_matrix(resolved);
  const auto jobs_b = comet::driver::build_matrix(reparsed);
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  const auto results_a = comet::driver::run_sweep(jobs_a, 1);
  const auto results_b = comet::driver::run_sweep(jobs_b, 1);
  for (std::size_t i = 0; i < results_a.size(); ++i) {
    expect_same_stats(results_a[i], results_b[i], "dump-roundtrip");
  }
}

TEST(ExperimentApi, ControllerSectionParsesAndDerivesWatermarks) {
  const std::string text =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "\n"
      "[controller]\n"
      "policy = [\"fcfs\", \"read-first\"]\n"
      "write_queue_depth = 16\n";
  const auto spec = comet::config::parse_experiment(
      toml::parse_string(text, "sched.toml"), nullptr);
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[0], comet::sched::Policy::kFcfs);
  EXPECT_EQ(spec.policies[1], comet::sched::Policy::kReadFirst);
  // Watermarks re-derived from the bounded write queue (7/8 and 3/8).
  EXPECT_EQ(spec.controller.write_queue_depth, 16);
  EXPECT_EQ(spec.controller.drain_high_watermark, 14);
  EXPECT_EQ(spec.controller.drain_low_watermark, 6);
  // Read depth kept its default.
  EXPECT_EQ(spec.controller.read_queue_depth, 32);

  // Giving one watermark explicitly still derives the other from the
  // depth — the same semantics as the --write-q/--drain-* CLI flags.
  const std::string partial =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "\n"
      "[controller]\n"
      "policy = \"read-first\"\n"
      "write_queue_depth = 8\n"
      "drain_low_watermark = 2\n";
  const auto mixed = comet::config::parse_experiment(
      toml::parse_string(partial, "sched.toml"), nullptr);
  EXPECT_EQ(mixed.controller.drain_high_watermark, 7);  // derived: 8 * 7/8
  EXPECT_EQ(mixed.controller.drain_low_watermark, 2);   // explicit
  const auto jobs = comet::driver::build_matrix(spec);
  ASSERT_EQ(jobs.size(), 2u);
  ASSERT_TRUE(jobs[1].controller.has_value());
  EXPECT_EQ(jobs[1].controller->policy, comet::sched::Policy::kReadFirst);
}

TEST(ExperimentApi, ControllerSectionDiagnostics) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    try {
      (void)comet::config::parse_experiment(
          toml::parse_string(text, "sched.toml"), nullptr);
      FAIL() << "expected error containing: " << fragment;
    } catch (const toml::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  const std::string header =
      "[experiment]\ndevices = [\"comet\"]\nworkloads = [\"gcc_like\"]\n";
  expect_error(header + "[controller]\npolicy = \"lifo\"\n",
               "unknown scheduling policy 'lifo'");
  expect_error(header + "[controller]\nqueue = 4\n", "unknown key 'queue'");
  expect_error(header +
                   "[controller]\nwrite_queue_depth = 8\n"
                   "drain_high_watermark = 50\n",
               "drain_high_watermark 50 exceeds write_queue_depth 8");
}

TEST(ExperimentApi, RunThreadsAloneShardsWithoutEngagingScheduling) {
  // A [controller] holding only run_threads keeps the direct replay
  // (no policy axis) and multiplies the matrix by the thread axis.
  const std::string text =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "\n"
      "[controller]\n"
      "run_threads = [1, 8]\n";
  const auto spec = comet::config::parse_experiment(
      toml::parse_string(text, "sharded.toml"), nullptr);
  EXPECT_TRUE(spec.policies.empty());
  EXPECT_EQ(spec.run_threads, (std::vector<int>{1, 8}));

  const auto jobs = comet::driver::build_matrix(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_FALSE(jobs[0].controller.has_value());
  EXPECT_EQ(jobs[0].run_threads, 1);
  EXPECT_EQ(jobs[1].run_threads, 8);

  // The axis only moves wall-clock: both cells report identical stats.
  const auto results = comet::driver::run_sweep(jobs, 1);
  expect_same_stats(results[0], results[1], "run-threads-axis");

  // And it survives the --dump-config round trip.
  const std::string dumped = comet::config::experiment_to_toml(
      comet::driver::resolve_experiment(spec));
  EXPECT_NE(dumped.find("run_threads = [1, 8]"), std::string::npos) << dumped;
  const auto reparsed = comet::config::parse_experiment(
      toml::parse_string(dumped, "dump.toml"), nullptr);
  EXPECT_TRUE(reparsed.policies.empty());
  EXPECT_EQ(reparsed.run_threads, spec.run_threads);
}

TEST(ExperimentApi, RunThreadsCombinesWithThePolicyAxis) {
  const std::string text =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "\n"
      "[controller]\n"
      "policy = [\"fcfs\", \"frfcfs\"]\n"
      "run_threads = [1, 2]\n";
  const auto spec = comet::config::parse_experiment(
      toml::parse_string(text, "sharded.toml"), nullptr);
  ASSERT_EQ(spec.policies.size(), 2u);
  const auto jobs = comet::driver::build_matrix(spec);
  ASSERT_EQ(jobs.size(), 4u);  // policies × run_threads
  EXPECT_EQ(jobs[0].controller->policy, comet::sched::Policy::kFcfs);
  EXPECT_EQ(jobs[0].run_threads, 1);
  EXPECT_EQ(jobs[1].run_threads, 2);
  EXPECT_EQ(jobs[2].controller->policy, comet::sched::Policy::kFrFcfs);
}

TEST(ExperimentApi, ScheduledExperimentRoundTripsThroughToml) {
  // The scheduled --dump-config loop: the [controller] section (policy
  // axis, depths, watermarks) must survive serialize → reparse with
  // bit-identical sweep results.
  const auto options = comet::driver::parse_args(
      {"--device", "comet", "--workload", "gcc_like", "--requests", "400",
       "--schedule", "frfcfs", "--read-q", "16", "--write-q", "16"});
  const auto resolved = comet::driver::resolve_experiment(
      comet::driver::experiment_from_options(options));
  ASSERT_EQ(resolved.policies.size(), 1u);

  const std::string text = comet::config::experiment_to_toml(resolved);
  EXPECT_NE(text.find("[controller]"), std::string::npos);
  EXPECT_NE(text.find("policy = \"frfcfs\""), std::string::npos);
  const auto reparsed = comet::config::parse_experiment(
      toml::parse_string(text, "dump.toml"), nullptr);
  ASSERT_EQ(reparsed.policies, resolved.policies);
  EXPECT_EQ(reparsed.controller.read_queue_depth,
            resolved.controller.read_queue_depth);
  EXPECT_EQ(reparsed.controller.write_queue_depth,
            resolved.controller.write_queue_depth);
  EXPECT_EQ(reparsed.controller.drain_high_watermark,
            resolved.controller.drain_high_watermark);
  EXPECT_EQ(reparsed.controller.drain_low_watermark,
            resolved.controller.drain_low_watermark);

  const auto results_a =
      comet::driver::run_sweep(comet::driver::build_matrix(resolved), 1);
  const auto results_b =
      comet::driver::run_sweep(comet::driver::build_matrix(reparsed), 1);
  ASSERT_EQ(results_a.size(), results_b.size());
  for (std::size_t i = 0; i < results_a.size(); ++i) {
    expect_same_stats(results_a[i], results_b[i], "sched-roundtrip");
    EXPECT_EQ(results_a[i].sched_policy, results_b[i].sched_policy);
    EXPECT_EQ(results_a[i].sched_queue_delay_ns.mean(),
              results_b[i].sched_queue_delay_ns.mean());
  }
}

TEST(ExperimentApi, TraceExperimentValidates) {
  auto spec = ExperimentBuilder()
                  .device("comet")
                  .trace("some.trace", 3.0)
                  .build();
  EXPECT_EQ(spec.trace_file, "some.trace");
  EXPECT_DOUBLE_EQ(spec.cpu_ghz, 3.0);
  // requests/seed are ignored during replay, so an axis alongside a
  // trace file is rejected instead of running N identical replays.
  EXPECT_THROW(ExperimentBuilder()
                   .device("comet")
                   .trace("some.trace")
                   .seeds({1, 2})
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(ExperimentBuilder()
                   .device("comet")
                   .trace("some.trace")
                   .requests({100, 200})
                   .build(),
               std::invalid_argument);
  // parse path: trace_file + workloads is rejected with a line anchor.
  const std::string text =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "trace_file = \"t.nvt\"\n";
  EXPECT_THROW(comet::config::parse_experiment(
                   toml::parse_string(text, "t.toml"), nullptr),
               toml::ParseError);
}

// --- [telemetry] section -------------------------------------------------

TEST(ExperimentApi, TelemetrySectionParses) {
  const std::string text =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "workloads = [\"gcc_like\"]\n"
      "[telemetry]\n"
      "trace_out = \"run.json\"\n"
      "trace_limit = 5000\n"
      "metrics_interval_ns = 250000\n"
      "metrics_csv = \"run.csv\"\n";
  const auto spec = comet::config::parse_experiment(
      toml::parse_string(text, "t.toml"), nullptr);
  EXPECT_EQ(spec.telemetry.trace_path, "run.json");
  EXPECT_EQ(spec.telemetry.trace_limit, 5000u);
  EXPECT_EQ(spec.telemetry.metrics_interval_ps, 250'000'000u);  // ns -> ps.
  EXPECT_EQ(spec.telemetry.metrics_csv, "run.csv");
  EXPECT_TRUE(spec.telemetry.enabled());
}

TEST(ExperimentApi, TelemetrySectionDiagnostics) {
  // trace_limit without trace_out: no event budget to cap.
  EXPECT_THROW(comet::config::parse_experiment(
                   toml::parse_string("[experiment]\n"
                                      "devices = [\"comet\"]\n"
                                      "workloads = [\"gcc_like\"]\n"
                                      "[telemetry]\n"
                                      "trace_limit = 100\n",
                                      "t.toml"),
                   nullptr),
               toml::ParseError);
  // metrics_csv without an interval: no timeline to write.
  EXPECT_THROW(comet::config::parse_experiment(
                   toml::parse_string("[experiment]\n"
                                      "devices = [\"comet\"]\n"
                                      "workloads = [\"gcc_like\"]\n"
                                      "[telemetry]\n"
                                      "metrics_csv = \"t.csv\"\n",
                                      "t.toml"),
                   nullptr),
               toml::ParseError);
  // A zero interval is degenerate (0 already means "disabled").
  EXPECT_THROW(comet::config::parse_experiment(
                   toml::parse_string("[experiment]\n"
                                      "devices = [\"comet\"]\n"
                                      "workloads = [\"gcc_like\"]\n"
                                      "[telemetry]\n"
                                      "metrics_interval_ns = 0\n",
                                      "t.toml"),
                   nullptr),
               toml::ParseError);
  // Unknown keys are rejected like every other section.
  EXPECT_THROW(comet::config::parse_experiment(
                   toml::parse_string("[experiment]\n"
                                      "devices = [\"comet\"]\n"
                                      "workloads = [\"gcc_like\"]\n"
                                      "[telemetry]\n"
                                      "tracing = true\n",
                                      "t.toml"),
                   nullptr),
               toml::ParseError);
}

TEST(ExperimentApi, TelemetryExperimentRoundTripsThroughToml) {
  // The --dump-config loop for instrumented runs: the [telemetry]
  // section must survive serialize -> reparse exactly.
  const auto options = comet::driver::parse_args(
      {"--device", "comet", "--workload", "gcc_like", "--requests", "400",
       "--trace-out", "run.json", "--trace-limit", "9000",
       "--metrics-interval", "500000", "--metrics-csv", "run.csv"});
  const auto resolved = comet::driver::resolve_experiment(
      comet::driver::experiment_from_options(options));

  const std::string text = comet::config::experiment_to_toml(resolved);
  EXPECT_NE(text.find("[telemetry]"), std::string::npos);
  EXPECT_NE(text.find("trace_out = \"run.json\""), std::string::npos);
  EXPECT_NE(text.find("metrics_interval_ns = 500000"), std::string::npos);
  const auto reparsed = comet::config::parse_experiment(
      toml::parse_string(text, "dump.toml"), nullptr);
  EXPECT_EQ(reparsed.telemetry.trace_path, resolved.telemetry.trace_path);
  EXPECT_EQ(reparsed.telemetry.trace_limit, resolved.telemetry.trace_limit);
  EXPECT_EQ(reparsed.telemetry.metrics_interval_ps,
            resolved.telemetry.metrics_interval_ps);
  EXPECT_EQ(reparsed.telemetry.metrics_csv, resolved.telemetry.metrics_csv);

  // A telemetry-free spec writes no [telemetry] section at all.
  const auto plain = comet::driver::resolve_experiment(
      comet::driver::experiment_from_options(comet::driver::parse_args(
          {"--device", "comet", "--workload", "gcc_like"})));
  EXPECT_EQ(comet::config::experiment_to_toml(plain).find("[telemetry]"),
            std::string::npos);
}

// --- Multi-tenant [tenant] section ---------------------------------------

TEST(ExperimentApi, TenantSectionParses) {
  const std::string text =
      "[experiment]\n"
      "devices = [\"comet\"]\n"
      "[tenant]\n"
      "mapping = \"interleave\"\n"
      "[tenant.web]\n"
      "workload = \"gcc_like\"\n"
      "[tenant.batch]\n"
      "workload = \"mcf_like\"\n"
      "interarrival_ns = 40.0\n"
      "burstiness = 0.5\n"
      "requests = 3000\n";
  const auto spec = comet::config::parse_experiment(
      toml::parse_string(text, "t.toml"), nullptr);
  ASSERT_EQ(spec.tenants.size(), 2u);
  // Streams come out name-ordered regardless of document order: name
  // order fixes tenant ids and per-tenant seeds, so two documents
  // listing the same tenants always mean the same run.
  EXPECT_EQ(spec.tenants[0].name, "batch");
  EXPECT_EQ(spec.tenants[0].profile.name, "mcf_like");
  EXPECT_DOUBLE_EQ(spec.tenants[0].interarrival_ns, 40.0);
  EXPECT_DOUBLE_EQ(spec.tenants[0].burstiness, 0.5);
  EXPECT_EQ(spec.tenants[0].requests, 3000u);
  EXPECT_EQ(spec.tenants[1].name, "web");
  EXPECT_EQ(spec.tenants[1].profile.name, "gcc_like");
  EXPECT_EQ(spec.tenants[1].requests, 0u);  // 0 = the run-level default.
  EXPECT_EQ(spec.tenant_mapping, comet::config::TenantMapping::kInterleave);
}

TEST(ExperimentApi, TenantSectionDiagnostics) {
  const auto parse = [](const std::string& tenant_block) {
    return comet::config::parse_experiment(
        toml::parse_string("[experiment]\n"
                           "devices = [\"comet\"]\n" +
                               tenant_block,
                           "t.toml"),
        nullptr);
  };
  // Unknown mapping names the two valid spellings.
  EXPECT_THROW(parse("[tenant]\n"
                     "mapping = \"striped\"\n"
                     "[tenant.a]\n"
                     "workload = \"gcc_like\"\n"),
               toml::ParseError);
  // A stream needs a demand: workload or trace_file.
  EXPECT_THROW(parse("[tenant.a]\n"
                     "interarrival_ns = 10.0\n"),
               toml::ParseError);
  // Unknown workload profiles are rejected at the offending line.
  EXPECT_THROW(parse("[tenant.a]\n"
                     "workload = \"no_such_profile\"\n"),
               toml::ParseError);
  // A bare [tenant] section with no streams schedules nothing.
  EXPECT_THROW(parse("[tenant]\n"
                     "mapping = \"partition\"\n"),
               toml::ParseError);
  // Unknown keys are rejected like every other section.
  EXPECT_THROW(parse("[tenant.a]\n"
                     "workload = \"gcc_like\"\n"
                     "priority = 3\n"),
               toml::ParseError);
  // burstiness is a fraction of [0, 1).
  EXPECT_THROW(parse("[tenant.a]\n"
                     "workload = \"gcc_like\"\n"
                     "burstiness = 1.0\n"),
               toml::ParseError);
}

TEST(ExperimentApi, TenantStreamsConflictWithOtherDemandAxes) {
  comet::config::TenantSpec tenant;
  tenant.name = "web";
  tenant.profile = comet::memsim::profile_by_name("gcc_like");
  // Tenants own the demand: a workload axis on top is ambiguous.
  EXPECT_THROW(ExperimentBuilder()
                   .device("comet")
                   .workload(comet::memsim::profile_by_name("gcc_like"))
                   .tenant(tenant)
                   .build(),
               std::invalid_argument);
  // So is a run-level trace file (trace tenants carry their own path).
  EXPECT_THROW(ExperimentBuilder()
                   .device("comet")
                   .trace("demand.nvt", 2.0)
                   .tenant(tenant)
                   .build(),
               std::invalid_argument);
  EXPECT_NO_THROW(
      ExperimentBuilder().device("comet").tenant(tenant).build());
}

TEST(ExperimentApi, TenantExperimentRoundTripsThroughToml) {
  // The --dump-config loop for multi-tenant runs: the [tenant] section
  // must survive serialize -> reparse exactly.
  const auto options = comet::driver::parse_args(
      {"--device", "comet", "--tenants", "web=gcc_like,batch=mcf_like:40:0.5",
       "--tenant-mapping", "interleave", "--schedule", "token-budget",
       "--tenant-tokens", "32", "--requests", "400"});
  const auto resolved = comet::driver::resolve_experiment(
      comet::driver::experiment_from_options(options));

  const std::string text = comet::config::experiment_to_toml(resolved);
  EXPECT_NE(text.find("[tenant]"), std::string::npos);
  EXPECT_NE(text.find("mapping = \"interleave\""), std::string::npos);
  EXPECT_NE(text.find("[tenant.batch]"), std::string::npos);
  EXPECT_NE(text.find("[tenant.web]"), std::string::npos);
  EXPECT_NE(text.find("tenant_tokens = 32"), std::string::npos);
  const auto reparsed = comet::config::parse_experiment(
      toml::parse_string(text, "dump.toml"), nullptr);
  ASSERT_EQ(reparsed.tenants.size(), resolved.tenants.size());
  for (std::size_t i = 0; i < reparsed.tenants.size(); ++i) {
    EXPECT_EQ(reparsed.tenants[i].name, resolved.tenants[i].name);
    EXPECT_EQ(reparsed.tenants[i].profile.name,
              resolved.tenants[i].profile.name);
    EXPECT_DOUBLE_EQ(reparsed.tenants[i].interarrival_ns,
                     resolved.tenants[i].interarrival_ns);
    EXPECT_DOUBLE_EQ(reparsed.tenants[i].burstiness,
                     resolved.tenants[i].burstiness);
    EXPECT_EQ(reparsed.tenants[i].requests, resolved.tenants[i].requests);
  }
  EXPECT_EQ(reparsed.tenant_mapping, resolved.tenant_mapping);
  EXPECT_EQ(reparsed.controller.tenant_tokens, 32);

  // A tenant-free spec writes no [tenant] section at all.
  const auto plain = comet::driver::resolve_experiment(
      comet::driver::experiment_from_options(comet::driver::parse_args(
          {"--device", "comet", "--workload", "gcc_like"})));
  EXPECT_EQ(comet::config::experiment_to_toml(plain).find("[tenant]"),
            std::string::npos);
}

}  // namespace
