// Quickstart: the COMET public API in five minutes.
//
// Builds the paper's COMET-4b memory (a smaller-capacity variant so the
// functional cell arrays stay light), writes and reads cache lines
// through the full material -> photonic -> architecture stack, and runs
// a short trace through the cycle-level simulator.
//
//   build/examples/quickstart

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/comet_memory.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"

int main() {
  // 1. Configure. comet_4b() is the paper's chosen design point
  //    (4 banks x 4096 subarrays x 512 rows x 256 cols x 4 bits/cell);
  //    shrink the subarray count for a quick functional demo.
  auto config = comet::core::CometConfig::comet_4b();
  config.subarrays = 16;
  config.rows_per_subarray = 64;
  config.channels = 2;

  // 2. The functional memory: real GST cells programmed through the
  //    calibrated thermal model and read back through the loss/gain/
  //    classification chain.
  comet::core::CometMemory memory(config);
  std::cout << "COMET functional memory\n"
            << "  bits/cell:     " << config.bits_per_cell << "\n"
            << "  line size:     " << config.line_bytes() << " B\n"
            << "  level spacing: " << memory.level_table().level_spacing()
            << " (paper: ~6 %)\n"
            << "  max write:     "
            << memory.level_table().max_write_latency_ns()
            << " ns (Table II: 170 ns)\n\n";

  const auto line = config.line_bytes();
  std::vector<std::uint8_t> data(line), readback(line);
  for (std::size_t i = 0; i < line; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }

  const auto write = memory.write_line(/*address=*/0, data);
  const auto read = memory.read_line(/*address=*/0, readback);
  std::cout << "wrote one line:  " << write.latency_ns << " ns, "
            << write.energy_pj << " pJ\n"
            << "read it back:    " << read.latency_ns << " ns, correct = "
            << std::boolalpha << (read.correct && readback == data)
            << "\n\n";

  // 3. The architecture simulator: replay a SPEC-like trace against the
  //    full 8 GB COMET device model.
  const auto device = comet::core::CometMemory::device_model(
      comet::core::CometConfig::comet_4b(),
      comet::photonics::LossParameters::paper());
  const comet::memsim::MemorySystem system(device);

  const auto profile = comet::memsim::profile_by_name("gcc_like");
  const comet::memsim::TraceGenerator gen(profile, /*seed=*/1);
  const auto stats = system.run(gen.generate(20000, 128), profile.name);

  std::cout << "trace replay (" << profile.name << ", 20k requests)\n"
            << "  bandwidth:   " << stats.bandwidth_gbps() << " GB/s\n"
            << "  avg latency: " << stats.avg_latency_ns() << " ns\n"
            << "  energy/bit:  " << stats.epb_pj_per_bit() << " pJ/bit\n";
  return 0;
}
