// Design-space exploration with the COMET models: sweep bit density,
// subarray shape and SOA spacing, and print the resulting capacity,
// power, loss-budget feasibility and achieved bandwidth — the kind of
// cross-layer what-if analysis the paper's Section IV.A performs to pick
// (B x S_r x M_r x M_c x b) = (4 x 4096 x 512 x 256 x 4).
//
//   build/examples/design_explorer

#include <iostream>

#include "core/comet_memory.hpp"
#include "core/gain_lut.hpp"
#include "core/power_model.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "photonics/waveguide.hpp"
#include "util/table.hpp"

namespace {

double measure_bw(const comet::core::CometConfig& config) {
  const auto device = comet::core::CometMemory::device_model(
      config, comet::photonics::LossParameters::paper());
  auto profile = comet::memsim::profile_by_name("gcc_like");
  profile.avg_interarrival_ns = 0.5;
  const comet::memsim::TraceGenerator gen(profile, 3);
  return comet::memsim::MemorySystem(device)
      .run(gen.generate(20000, 128))
      .bandwidth_gbps();
}

}  // namespace

int main() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();

  std::cout << "=== Sweep 1: bit density (the paper's Fig. 7 decision) ===\n";
  Table density({"config", "wavelengths", "LUT entries", "power (W)",
                 "BW (GB/s)", "capacity/chip (Gbit)"});
  for (const auto& config : {comet::core::CometConfig::comet_1b(),
                             comet::core::CometConfig::comet_2b(),
                             comet::core::CometConfig::comet_4b()}) {
    const comet::core::CometPowerModel power(config, losses);
    const comet::core::GainLut lut(config, losses);
    density.add_row(
        {"COMET-" + std::to_string(config.bits_per_cell) + "b",
         std::to_string(config.wavelengths()), std::to_string(lut.entries()),
         Table::num(power.breakdown().total_w(), 1),
         Table::num(measure_bw(config), 1),
         Table::num(double(config.bits_per_chip()) / 1e9, 2)});
  }
  density.print(std::cout);

  std::cout << "\n=== Sweep 2: subarray rows M_r (SOA chain feasibility) "
               "===\n";
  Table rows({"M_r", "S_r", "SOA stages/column", "active SOAs", "power (W)"});
  for (const int mr : {128, 256, 512, 1024}) {
    auto config = comet::core::CometConfig::comet_4b();
    // Keep N_r = S_r x M_r constant at the paper's 2M rows per bank.
    config.rows_per_subarray = mr;
    config.subarrays = static_cast<int>((4096LL * 512) / mr);
    // S_r must stay a perfect square for the grid layout.
    int grid = 1;
    while (grid * grid < config.subarrays) ++grid;
    config.subarrays = grid * grid;
    const comet::core::CometPowerModel power(config, losses);
    rows.add_row({std::to_string(mr), std::to_string(config.subarrays),
                  std::to_string(mr / config.rows_per_soa),
                  std::to_string(config.active_soas()),
                  Table::num(power.breakdown().total_w(), 1)});
  }
  rows.print(std::cout);

  std::cout << "\n=== Sweep 3: MDM degree (bank parallelism) ===\n";
  Table mdm({"B (banks = modes)", "worst-mode excess (dB)", "BW (GB/s)",
             "power (W)"});
  for (const int banks : {2, 4, 8}) {
    auto config = comet::core::CometConfig::comet_4b();
    config.banks = banks;
    const comet::photonics::MdmLink link(banks);
    const comet::core::CometPowerModel power(config, losses);
    mdm.add_row({std::to_string(banks),
                 Table::num(link.worst_mode_excess_loss_db(), 2),
                 Table::num(measure_bw(config), 1),
                 Table::num(power.breakdown().total_w(), 1)});
  }
  mdm.print(std::cout);
  std::cout << "\n(the paper caps the MDM degree at 4: higher orders leak "
               "and need wider waveguides — Section III.C)\n";
  return 0;
}
