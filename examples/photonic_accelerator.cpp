// Photonic-AI-accelerator case study (the paper's Section IV.D scenario
// as a library user would run it): attach different main memories to a
// DOTA-style photonic tensor core and compare the data-movement energy
// of DeiT-class transformer inference.
//
//   build/examples/photonic_accelerator

#include <iostream>

#include "accel/dota.hpp"
#include "accel/transformer.hpp"
#include "core/comet_memory.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "util/table.hpp"

int main() {
  using comet::util::Table;
  namespace accel = comet::accel;
  const auto losses = comet::photonics::LossParameters::paper();

  struct Candidate {
    comet::memsim::DeviceModel device;
    bool photonic;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({comet::dram::ddr4_2d(), false});
  candidates.push_back({comet::dram::ddr4_3d(), false});
  candidates.push_back({comet::cosmos::cosmos_device_model(
                            comet::cosmos::CosmosConfig::paper(), losses),
                        true});
  candidates.push_back({comet::core::CometMemory::device_model(
                            comet::core::CometConfig::comet_4b(), losses),
                        true});

  const auto models = {accel::TransformerModel::deit_tiny(),
                       accel::TransformerModel::deit_base()};

  Table table({"memory", "model", "weights (MB)", "stream BW (GB/s)",
               "bottleneck", "total EPB (pJ/bit)"});
  for (const auto& candidate : candidates) {
    const accel::DotaSystem dota(accel::DotaConfig::paper(),
                                 candidate.device, candidate.photonic);
    for (const auto& model : models) {
      const auto r = dota.evaluate(model);
      const bool memory_bound = r.achieved_bw_gbps < r.demanded_bw_gbps;
      table.add_row({r.memory_name, r.model_name,
                     Table::num(
                         static_cast<double>(model.weight_traffic_bytes()) /
                             1e6, 1),
                     Table::num(r.achieved_bw_gbps, 1),
                     memory_bound ? "memory" : "compute",
                     Table::num(r.total_epb(), 1)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nTwo effects visible (paper Section IV.D):\n"
      << " 1. electronic memories pay the per-bit E/O conversion into the\n"
      << "    photonic tensor core, photonic memories do not;\n"
      << " 2. low-bandwidth memories leave DOTA memory-bound, burning\n"
      << "    background power over longer executions per bit.\n";
  return 0;
}
