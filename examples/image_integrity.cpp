// Data-integrity demonstration (the paper's Fig. 2 scenario, end to end).
//
// Stores a procedurally generated 8-bit grayscale "image" in two photonic
// memories and hammers neighbouring rows with writes:
//
//  * a COSMOS-style crossbar (no cell isolation): thermo-optic crosstalk
//    from each neighbouring write drifts the stored crystalline
//    fractions and visibly destroys the image;
//  * COMET (MR-gated cells): the same traffic leaves the image intact.
//
// The "image" is rendered as ASCII intensity for direct inspection.
//
//   build/examples/image_integrity

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/comet_memory.hpp"
#include "cosmos/crossbar.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kSize = 32;  // 32 x 32 pixels, 4 bits each

int pixel(int r, int c) {
  // Two soft blobs on a gradient: recognizable structure.
  const double d1 = std::hypot(r - 10.0, c - 12.0);
  const double d2 = std::hypot(r - 22.0, c - 24.0);
  const double v = 12.0 * std::exp(-d1 * d1 / 40.0) +
                   9.0 * std::exp(-d2 * d2 / 30.0) + (r + c) * 0.1;
  return std::min(15, std::max(0, static_cast<int>(v)));
}

void render(const std::vector<int>& levels, const char* title) {
  static const char* kShades = " .:-=+*#%@&";
  std::cout << title << '\n';
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      const int v = levels[static_cast<std::size_t>(r) * kSize + c];
      std::cout << kShades[std::min(10, v * 10 / 15)];
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  comet::util::Rng rng(7);

  // ---------------- COSMOS crossbar: store, hammer, read.
  comet::cosmos::Crossbar crossbar(kSize, kSize, /*bits_per_cell=*/4);
  std::vector<int> original(kSize * kSize);
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      original[static_cast<std::size_t>(r) * kSize + c] = pixel(r, c);
      crossbar.set_state(r, c, pixel(r, c));
    }
  }
  render(original, "original image (both memories)");

  std::vector<int> scratch(kSize);
  for (int pass = 0; pass < 4; ++pass) {
    for (int r = 0; r < kSize; r += 2) {
      for (auto& v : scratch) v = static_cast<int>(rng.next_below(16));
      crossbar.write_row(r, scratch);
    }
  }
  // Read back only the odd (victim) rows into the displayed image; the
  // even rows now legitimately hold the new data, so show the victims'
  // view of the original content.
  std::vector<int> cosmos_view = original;
  for (int r = 1; r < kSize; r += 2) {
    for (int c = 0; c < kSize; ++c) {
      cosmos_view[static_cast<std::size_t>(r) * kSize + c] =
          crossbar.read(r, c);
    }
  }
  render(cosmos_view,
         "COSMOS crossbar after 4 passes of adjacent-row writes "
         "(victim rows corrupted)");

  // ---------------- COMET: same image via the functional byte API.
  auto config = comet::core::CometConfig::comet_4b();
  config.subarrays = 16;
  config.rows_per_subarray = 64;
  config.channels = 2;
  comet::core::CometMemory memory(config);
  const auto line = config.line_bytes();

  // Pack the 4-bit image into bytes: two pixels per byte, 256 pixels
  // (= one 32x32 image row x 8) per 128 B line.
  std::vector<std::uint8_t> bytes(kSize * kSize / 2);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(original[2 * i] |
                                         (original[2 * i + 1] << 4));
  }
  const std::size_t lines = bytes.size() / line;
  for (std::size_t l = 0; l < lines; ++l) {
    memory.write_line(l * line, {bytes.data() + l * line, line});
  }
  // Hammer adjacent rows of the same subarrays.
  std::vector<std::uint8_t> noise(line);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::size_t l = 0; l < lines; ++l) {
      for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
      const std::uint64_t adjacent =
          (lines + l) * line * config.channels * config.banks;
      memory.write_line(adjacent, noise);
    }
  }
  std::vector<std::uint8_t> back(bytes.size());
  bool all_correct = true;
  for (std::size_t l = 0; l < lines; ++l) {
    const auto r = memory.read_line(l * line, {back.data() + l * line, line});
    all_correct = all_correct && r.correct;
  }
  std::vector<int> comet_view(kSize * kSize);
  for (std::size_t i = 0; i < back.size(); ++i) {
    comet_view[2 * i] = back[i] & 0xF;
    comet_view[2 * i + 1] = back[i] >> 4;
  }
  render(comet_view, "COMET after the same adjacent-row write traffic");

  const bool identical = comet_view == original;
  std::cout << "COMET image intact: " << std::boolalpha
            << (identical && all_correct) << "\n";
  return identical && all_correct ? 0 : 1;
}
