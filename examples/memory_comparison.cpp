// Memory-architecture comparison on a workload of your choice.
//
// The scenario from the paper's introduction: a data-intensive
// application (default: a graph-processing-like pointer chase) running
// against every memory architecture in the study. Prints achieved
// bandwidth, latency and energy-per-bit per architecture.
//
//   build/examples/memory_comparison [profile] [requests]
//   profiles: mcf_like lbm_like gcc_like milc_like omnetpp_like
//             xalancbmk_like leslie3d_like libquantum_like

#include <iostream>
#include <string>

#include "core/comet_memory.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using comet::util::Table;
  const std::string profile_name = argc > 1 ? argv[1] : "mcf_like";
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 40000;

  auto profile = comet::memsim::profile_by_name(profile_name);
  const comet::memsim::TraceGenerator gen(profile, /*seed=*/99);
  const auto trace = gen.generate(requests, 128);

  const auto losses = comet::photonics::LossParameters::paper();
  std::vector<comet::memsim::DeviceModel> devices;
  devices.push_back(comet::dram::ddr3_2d());
  devices.push_back(comet::dram::ddr3_3d());
  devices.push_back(comet::dram::ddr4_2d());
  devices.push_back(comet::dram::ddr4_3d());
  devices.push_back(comet::dram::epcm_mm());
  devices.push_back(comet::cosmos::cosmos_device_model(
      comet::cosmos::CosmosConfig::paper(), losses));
  devices.push_back(comet::core::CometMemory::device_model(
      comet::core::CometConfig::comet_4b(), losses));

  std::cout << "workload: " << profile.name << "  (" << requests
            << " requests, " << (profile.read_fraction * 100)
            << " % reads)\n\n";
  Table table({"architecture", "BW (GB/s)", "avg latency (ns)",
               "p95 queueing (ns)", "EPB (pJ/bit)", "bank util (%)"});
  for (const auto& device : devices) {
    const comet::memsim::MemorySystem system(device);
    const auto stats = system.run(trace, profile.name);
    const int banks =
        device.timing.channels * device.timing.banks_per_channel;
    table.add_row({device.name, Table::num(stats.bandwidth_gbps(), 2),
                   Table::num(stats.avg_latency_ns(), 1),
                   Table::num(stats.queue_delay_ns.max(), 1),
                   Table::num(stats.epb_pj_per_bit(), 1),
                   Table::num(stats.bank_utilization(banks) * 100, 1)});
  }
  table.print(std::cout);
  return 0;
}
